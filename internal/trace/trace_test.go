package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderAndRingAreSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder enabled")
	}
	if r.Events() != nil || r.Snapshot("x") != nil || r.Now() != 0 {
		t.Fatal("nil recorder returned data")
	}
	rg := r.Ring("lane", 0)
	if rg != nil {
		t.Fatal("nil recorder handed out a ring")
	}
	rg.Instant(KindYield, 1)
	rg.Interval(KindDispatch, 1, rg.Now())
	rg.Emit(KindUser, 1, 0, 5, 0)
	rg.Close()
	if rg.Dropped() != 0 || rg.Written() != 0 || rg.Name() != "" || rg.Exec() != 0 {
		t.Fatal("nil ring returned data")
	}
	r.Reset()
}

func TestDisabledRecorderHandsOutNilRings(t *testing.T) {
	r := &Recorder{epoch: time.Now(), disabled: true}
	if r.Enabled() {
		t.Fatal("disabled recorder reports enabled")
	}
	if rg := r.Ring("lane", 3); rg != nil {
		t.Fatal("disabled recorder handed out a ring")
	}
	d := r.Snapshot("req")
	if d == nil || !d.Disabled || len(d.Events) != 0 {
		t.Fatalf("disabled snapshot = %+v", d)
	}
}

func TestRingRecordAndDecode(t *testing.T) {
	r := NewRecorder(64)
	rg := r.Ring("test/es0", 3)
	rg.Instant(KindSteal, 7)
	start := rg.Now()
	time.Sleep(time.Millisecond)
	rg.Interval(KindDispatch, 9, start)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[0].Kind != KindSteal || ev[0].Exec != 3 || ev[0].Unit != 7 || ev[0].Dur != 0 {
		t.Fatalf("instant event = %+v", ev[0])
	}
	if ev[0].Lane != "test/es0" {
		t.Fatalf("lane = %q", ev[0].Lane)
	}
	if ev[1].Kind != KindDispatch || ev[1].Unit != 9 || ev[1].Dur < time.Millisecond {
		t.Fatalf("interval event = %+v", ev[1])
	}
	if !ev[1].Start.After(ev[0].Start.Add(-time.Microsecond)) {
		t.Fatalf("events out of order: %v then %v", ev[0].Start, ev[1].Start)
	}
}

// TestOverwriteOldest drives a ring far past capacity and checks that
// exactly the newest window survives — flight-recorder semantics.
func TestOverwriteOldest(t *testing.T) {
	r := NewRecorder(16)
	rg := r.Ring("wrap", 0)
	const total = 100
	for i := 0; i < total; i++ {
		rg.Instant(KindYield, uint64(i))
	}
	ev := r.Events()
	if len(ev) != 16 {
		t.Fatalf("retained = %d, want 16", len(ev))
	}
	seen := make(map[uint64]bool)
	for _, e := range ev {
		if e.Unit < total-16 {
			t.Fatalf("stale event survived: unit %d", e.Unit)
		}
		seen[e.Unit] = true
	}
	if len(seen) != 16 {
		t.Fatalf("window has duplicates: %d distinct units", len(seen))
	}
	if rg.Written() != total {
		t.Fatalf("written = %d, want %d", rg.Written(), total)
	}
	if rg.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", rg.Dropped())
	}
}

// TestSingleWriterConcurrentReader hammers one ring from its owner
// while a reader snapshots continuously; run under -race this is the
// core lock-free-protocol test. Every decoded event must be internally
// consistent (unit echoes start).
func TestSingleWriterConcurrentReader(t *testing.T) {
	r := NewRecorder(128)
	rg := r.Ring("race", 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			rg.Emit(KindTasklet, i, int64(i), int64(i), 0)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, e := range r.Events() {
			if e.Kind != KindTasklet || e.Dur != e.Start.Sub(r.Epoch()) {
				t.Errorf("torn event decoded: %+v", e)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestMultiWriterRing exercises the fetch-add claim path with several
// concurrent writers on one ring (the serve request-lane shape).
func TestMultiWriterRing(t *testing.T) {
	r := NewRecorder(1 << 14)
	rg := r.SharedRing("multi", -1)
	const writers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rg.Instant(KindUser, uint64(w*per+i))
			}
		}()
	}
	wg.Wait()
	ev := r.Events()
	if len(ev)+int(rg.Dropped()) != writers*per {
		t.Fatalf("events %d + dropped %d != %d", len(ev), rg.Dropped(), writers*per)
	}
	seen := make(map[uint64]bool)
	for _, e := range ev {
		if seen[e.Unit] {
			t.Fatalf("unit %d recorded twice", e.Unit)
		}
		seen[e.Unit] = true
	}
}

// TestDumpUnderLoadIsComplete snapshots while many lanes are actively
// writing and checks the dump is coherent: lane accounting covers every
// ring and each decoded event belongs to a registered lane.
func TestDumpUnderLoadIsComplete(t *testing.T) {
	r := NewRecorder(256)
	const lanes = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		rg := r.Ring("load/"+string(rune('a'+l)), l)
		rg.Instant(KindSteal, 0) // seed so every lane has data even if its goroutine lags
		wg.Add(1)
		go func(rg *Ring) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				st := rg.Now()
				rg.Interval(KindDispatch, i, st)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(rg)
	}
	time.Sleep(20 * time.Millisecond)
	d := r.Snapshot("test")
	close(stop)
	wg.Wait()
	if len(d.Lanes) != lanes {
		t.Fatalf("lanes = %d, want %d", len(d.Lanes), lanes)
	}
	byName := make(map[string]bool)
	for _, li := range d.Lanes {
		byName[li.Name] = true
		if li.Written == 0 {
			t.Fatalf("lane %s recorded nothing", li.Name)
		}
		if li.Slots != 256 {
			t.Fatalf("lane %s slots = %d", li.Name, li.Slots)
		}
	}
	if len(d.Events) == 0 {
		t.Fatal("dump under load decoded no events")
	}
	for _, e := range d.Events {
		if !byName[e.Lane] {
			t.Fatalf("event from unregistered lane %q", e.Lane)
		}
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Start.Before(d.Events[i-1].Start) {
			t.Fatal("dump events not ordered by start time")
		}
	}
}

func TestRingReuseAfterClose(t *testing.T) {
	r := NewRecorder(32)
	a := r.Ring("first", 0)
	a.Instant(KindYield, 1)
	a.Close()
	// Closed ring's events remain visible until reuse.
	if ev := r.Events(); len(ev) != 1 || ev[0].Lane != "first" {
		t.Fatalf("closed ring events = %+v", ev)
	}
	b := r.Ring("second", 9)
	if a != b {
		t.Fatal("closed ring was not reused")
	}
	if ev := r.Events(); len(ev) != 0 {
		t.Fatalf("reused ring kept stale events: %+v", ev)
	}
	b.Instant(KindSteal, 2)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Lane != "second" || ev[0].Exec != 9 {
		t.Fatalf("reused ring events = %+v", ev)
	}
	b.Close()
	b.Close() // double close is a no-op
	if c := r.Ring("third", 1); c != b {
		t.Fatal("double close corrupted the free list")
	}
}

func TestLabelInterning(t *testing.T) {
	c1 := LabelCode("trace-test-label")
	c2 := LabelCode("trace-test-label")
	if c1 != c2 {
		t.Fatalf("label interned twice: %d vs %d", c1, c2)
	}
	if labelName(c1) != "trace-test-label" {
		t.Fatalf("labelName(%d) = %q", c1, labelName(c1))
	}
	if LabelCode("") != 0 || labelName(0) != "" {
		t.Fatal("empty label is not code 0")
	}
	r := NewRecorder(16)
	rg := r.Ring("labeled", 0)
	rg.Emit(KindUser, 1, 0, 10, c1)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Label != "trace-test-label" {
		t.Fatalf("labeled event = %+v", ev)
	}
}

func TestSummarize(t *testing.T) {
	base := time.Now()
	events := []Event{
		{Exec: 0, Kind: KindDispatch, Start: base, Dur: 10 * time.Millisecond},
		{Exec: 1, Kind: KindBarrier, Start: base.Add(2 * time.Millisecond), Dur: 30 * time.Millisecond},
		{Exec: 0, Kind: KindYield, Start: base.Add(5 * time.Millisecond)},
		{Exec: 1, Kind: KindBarrier, Start: base.Add(10 * time.Millisecond), Dur: 30 * time.Millisecond},
	}
	s := Summarize(events)
	if s.ByKind[KindDispatch] != 10*time.Millisecond {
		t.Fatalf("dispatch time = %v", s.ByKind[KindDispatch])
	}
	if s.ByKind[KindBarrier] != 60*time.Millisecond {
		t.Fatalf("barrier time = %v", s.ByKind[KindBarrier])
	}
	if s.Counts[KindYield] != 1 {
		t.Fatalf("yield count = %d", s.Counts[KindYield])
	}
	if len(s.Execs) != 2 || s.Execs[0] != 0 || s.Execs[1] != 1 {
		t.Fatalf("execs = %v", s.Execs)
	}
	if s.Span != 40*time.Millisecond {
		t.Fatalf("span = %v, want 40ms", s.Span)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Span != 0 || len(s.Execs) != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.Fraction(KindBarrier) != 0 {
		t.Fatal("empty fraction != 0")
	}
}

// TestFractionReproducesConverseClaim builds a synthetic trace matching
// §IX-D ("up to 75 % of its execution time in barrier and yield") and
// checks the arithmetic the claim rests on.
func TestFractionReproducesConverseClaim(t *testing.T) {
	base := time.Now()
	events := []Event{
		{Kind: KindDispatch, Start: base, Dur: 25 * time.Millisecond},
		{Kind: KindBarrier, Start: base, Dur: 45 * time.Millisecond},
		{Kind: KindYield, Start: base, Dur: 30 * time.Millisecond},
	}
	s := Summarize(events)
	frac := s.Fraction(KindBarrier, KindYield)
	if frac < 0.74 || frac > 0.76 {
		t.Fatalf("barrier+yield fraction = %v, want 0.75", frac)
	}
}

func TestRenderHasPercentages(t *testing.T) {
	base := time.Now()
	events := []Event{
		{Exec: 0, Kind: KindDispatch, Start: base, Dur: 75 * time.Millisecond},
		{Exec: 0, Kind: KindSteal, Start: base, Dur: 25 * time.Millisecond},
	}
	out := Summarize(events).Render()
	for _, want := range []string{"dispatch", "steal", "1 executors", "75.0%", "25.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder(16)
	rg := r.Ring("chrome/es2", 2)
	st := rg.Now()
	time.Sleep(time.Millisecond)
	rg.Interval(KindDispatch, 1, st)
	rg2 := r.Ring("chrome/es3", 3)
	rg2.Instant(KindSteal, 2)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata records + 2 events.
	if len(decoded) != 4 {
		t.Fatalf("entries = %d, want 4", len(decoded))
	}
	if decoded[0]["ph"] != "M" || decoded[0]["name"] != "thread_name" {
		t.Fatalf("metadata entry = %v", decoded[0])
	}
	var span, instant map[string]any
	for _, rec := range decoded[2:] {
		switch rec["ph"] {
		case "X":
			span = rec
		case "i":
			instant = rec
		}
	}
	if span == nil || span["name"] != "dispatch" || span["tid"] != float64(2) {
		t.Fatalf("span entry = %v", span)
	}
	if instant == nil || instant["name"] != "steal" || instant["tid"] != float64(3) {
		t.Fatalf("instant entry = %v", instant)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]" {
		t.Fatalf("empty trace = %q", buf.String())
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	rg := r.Ring("rt/es0", 0)
	rg.Emit(KindPark, 42, 100, 200, LabelCode("io"))
	d := r.Snapshot("unit test")
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "unit test" || len(got.Lanes) != 1 || len(got.Events) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	e := got.Events[0]
	if e.Kind != KindPark || e.Unit != 42 || e.Dur != 200 || e.Label != "io" || e.Lane != "rt/es0" {
		t.Fatalf("event round trip = %+v", e)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindDispatch: "dispatch", KindTasklet: "tasklet", KindYield: "yield",
		KindSteal: "steal", KindBarrier: "barrier", KindIdle: "idle",
		KindUser: "user", KindPark: "park",
	}
	for k, w := range want {
		if k.String() != w {
			t.Fatalf("Kind(%d) = %q, want %q", k, k.String(), w)
		}
	}
	for k := range want {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Fatalf("kind JSON round trip %v -> %s -> %v (%v)", k, b, back, err)
		}
	}
}

func TestRecorderMinimumCapacity(t *testing.T) {
	r := NewRecorder(0)
	rg := r.Ring("min", 0)
	rg.Instant(KindYield, 1)
	if len(r.Events()) != 1 {
		t.Fatal("capacity floor not applied")
	}
	if len(rg.slots) != 16 {
		t.Fatalf("floor = %d slots, want 16", len(rg.slots))
	}
}

// TestBatcherCoalesces drives a batcher through a same-kind run, a kind
// change, and the cap, checking units land in the Unit field and time is
// conserved across the chained flushes.
func TestBatcherCoalesces(t *testing.T) {
	r := NewRecorder(256)
	bat := r.Ring("bat", 0).Batcher()
	bat.Begin()
	for i := 0; i < 10; i++ {
		bat.Note(KindDispatch, 1)
	}
	bat.Note(KindTasklet, 1) // kind change flushes the dispatch batch
	bat.Close()
	sum := Summarize(r.Events())
	if sum.Units[KindDispatch] != 10 || sum.Counts[KindDispatch] != 1 {
		t.Fatalf("dispatch: %d events, %d units; want 1 event of 10 units",
			sum.Counts[KindDispatch], sum.Units[KindDispatch])
	}
	if sum.Units[KindTasklet] != 1 {
		t.Fatalf("tasklet units = %d, want 1", sum.Units[KindTasklet])
	}
}

func TestBatcherCapFlush(t *testing.T) {
	r := NewRecorder(256)
	bat := r.Ring("cap", 0).Batcher()
	bat.Begin()
	const units = 3 * batchCap >> 1 // one full batch plus a partial
	for i := 0; i < units; i++ {
		bat.Note(KindDispatch, 1)
	}
	bat.Close()
	sum := Summarize(r.Events())
	if sum.Units[KindDispatch] != units {
		t.Fatalf("units = %d, want %d", sum.Units[KindDispatch], units)
	}
	if sum.Counts[KindDispatch] < 2 {
		t.Fatalf("events = %d, want >= 2 (cap flush)", sum.Counts[KindDispatch])
	}
}

// TestBatcherIdleDebounce checks that brief queue blinks do not open
// idle episodes but sustained empty polling does.
func TestBatcherIdleDebounce(t *testing.T) {
	r := NewRecorder(256)
	bat := r.Ring("idle", 0).Batcher()
	bat.Begin()
	bat.Note(KindDispatch, 1)
	for i := 0; i < idleAfter-1; i++ {
		bat.Idle() // below the debounce: still "busy"
	}
	bat.Begin()
	bat.Note(KindDispatch, 1)
	bat.Close()
	if got := Summarize(r.Events()).Counts[KindIdle]; got != 0 {
		t.Fatalf("idle events after sub-threshold blink = %d, want 0", got)
	}

	r.Reset()
	bat = r.Ring("idle2", 0).Batcher()
	bat.Begin()
	bat.Note(KindDispatch, 1)
	for i := 0; i < idleAfter+2; i++ {
		bat.Idle() // sustained: crosses the debounce
	}
	bat.Begin() // closes the episode, emitting its interval
	bat.Note(KindDispatch, 1)
	bat.Close()
	if got := Summarize(r.Events()).Counts[KindIdle]; got != 1 {
		t.Fatalf("idle events after sustained polling = %d, want 1", got)
	}
}

// TestBatcherIdleNow checks the undebounced transition (pre-park path)
// and that Close emits a still-open idle episode.
func TestBatcherIdleNow(t *testing.T) {
	r := NewRecorder(256)
	bat := r.Ring("park", 0).Batcher()
	bat.Begin()
	bat.Note(KindDispatch, 1)
	bat.IdleNow()
	bat.Close() // idle episode still open: Close emits it
	sum := Summarize(r.Events())
	if sum.Counts[KindIdle] != 1 {
		t.Fatalf("idle events = %d, want 1", sum.Counts[KindIdle])
	}
	if sum.Units[KindDispatch] != 1 {
		t.Fatalf("dispatch units = %d, want 1", sum.Units[KindDispatch])
	}
}

func TestBatcherNilIsSafe(t *testing.T) {
	var bat *Batcher
	if bat = (*Ring)(nil).Batcher(); bat != nil {
		t.Fatal("nil ring handed out a batcher")
	}
	bat.Begin()
	bat.Note(KindDispatch, 1)
	bat.Idle()
	bat.IdleNow()
	bat.Flush()
	bat.Close()
}

func BenchmarkRingEmit(b *testing.B) {
	r := NewRecorder(2048)
	rg := r.Ring("bench", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rg.Emit(KindDispatch, uint64(i), int64(i), 10, 0)
	}
}

func BenchmarkRingInterval(b *testing.B) {
	r := NewRecorder(2048)
	rg := r.Ring("bench", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rg.Interval(KindDispatch, uint64(i), rg.Now())
	}
}

func BenchmarkNilRingEmit(b *testing.B) {
	var rg *Ring
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rg.Interval(KindDispatch, uint64(i), rg.Now())
	}
}
