package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{})
	r.Instant(0, KindYield, 1)
	ran := false
	r.Span(0, KindDispatch, 1, func() { ran = true })
	if !ran {
		t.Fatal("nil recorder did not run the span body")
	}
	if r.Events() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder returned data")
	}
	r.Reset()
}

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder(10)
	r.Instant(3, KindSteal, 7)
	r.Span(1, KindDispatch, 9, func() { time.Sleep(time.Millisecond) })
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[0].Kind != KindSteal || ev[0].Exec != 3 || ev[0].Unit != 7 || ev[0].Dur != 0 {
		t.Fatalf("instant event = %+v", ev[0])
	}
	if ev[1].Kind != KindDispatch || ev[1].Dur < time.Millisecond {
		t.Fatalf("span event = %+v", ev[1])
	}
}

func TestCapacityDrops(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Instant(0, KindYield, uint64(i))
	}
	if len(r.Events()) != 3 {
		t.Fatalf("events = %d, want 3", len(r.Events()))
	}
	if r.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", r.Dropped())
	}
	// The retained events are the prefix.
	for i, e := range r.Events() {
		if e.Unit != uint64(i) {
			t.Fatalf("event %d unit = %d (not a prefix)", i, e.Unit)
		}
	}
}

func TestResetClears(t *testing.T) {
	r := NewRecorder(2)
	r.Instant(0, KindYield, 1)
	r.Instant(0, KindYield, 2)
	r.Instant(0, KindYield, 3) // dropped
	r.Reset()
	if len(r.Events()) != 0 || r.Dropped() != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(100000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Instant(g, KindYield, uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := len(r.Events()); got != 8000 {
		t.Fatalf("events = %d, want 8000", got)
	}
}

func TestSummarize(t *testing.T) {
	base := time.Now()
	events := []Event{
		{Exec: 0, Kind: KindDispatch, Start: base, Dur: 10 * time.Millisecond},
		{Exec: 1, Kind: KindBarrier, Start: base.Add(2 * time.Millisecond), Dur: 30 * time.Millisecond},
		{Exec: 0, Kind: KindYield, Start: base.Add(5 * time.Millisecond)},
		{Exec: 1, Kind: KindBarrier, Start: base.Add(10 * time.Millisecond), Dur: 30 * time.Millisecond},
	}
	s := Summarize(events)
	if s.ByKind[KindDispatch] != 10*time.Millisecond {
		t.Fatalf("dispatch time = %v", s.ByKind[KindDispatch])
	}
	if s.ByKind[KindBarrier] != 60*time.Millisecond {
		t.Fatalf("barrier time = %v", s.ByKind[KindBarrier])
	}
	if s.Counts[KindYield] != 1 {
		t.Fatalf("yield count = %d", s.Counts[KindYield])
	}
	if len(s.Execs) != 2 || s.Execs[0] != 0 || s.Execs[1] != 1 {
		t.Fatalf("execs = %v", s.Execs)
	}
	if s.Span != 40*time.Millisecond {
		t.Fatalf("span = %v, want 40ms", s.Span)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Span != 0 || len(s.Execs) != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.Fraction(KindBarrier) != 0 {
		t.Fatal("empty fraction != 0")
	}
}

// TestFractionReproducesConverseClaim builds a synthetic trace matching
// §IX-D ("up to 75 % of its execution time in barrier and yield") and
// checks the arithmetic the claim rests on.
func TestFractionReproducesConverseClaim(t *testing.T) {
	base := time.Now()
	events := []Event{
		{Kind: KindDispatch, Start: base, Dur: 25 * time.Millisecond},
		{Kind: KindBarrier, Start: base, Dur: 45 * time.Millisecond},
		{Kind: KindYield, Start: base, Dur: 30 * time.Millisecond},
	}
	s := Summarize(events)
	frac := s.Fraction(KindBarrier, KindYield)
	if frac < 0.74 || frac > 0.76 {
		t.Fatalf("barrier+yield fraction = %v, want 0.75", frac)
	}
}

func TestRender(t *testing.T) {
	r := NewRecorder(10)
	r.Span(0, KindDispatch, 1, func() {})
	r.Instant(0, KindSteal, 2)
	out := Summarize(r.Events()).Render()
	for _, want := range []string{"dispatch", "steal", "1 executors"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder(10)
	r.Span(2, KindDispatch, 1, func() { time.Sleep(time.Millisecond) })
	r.Instant(3, KindSteal, 2)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("entries = %d, want 2", len(decoded))
	}
	if decoded[0]["name"] != "dispatch" || decoded[0]["ph"] != "X" {
		t.Fatalf("span entry = %v", decoded[0])
	}
	if decoded[1]["name"] != "steal" || decoded[1]["ph"] != "i" {
		t.Fatalf("instant entry = %v", decoded[1])
	}
	if decoded[0]["tid"] != float64(2) {
		t.Fatalf("tid = %v, want 2", decoded[0]["tid"])
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]" {
		t.Fatalf("empty trace = %q", buf.String())
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindDispatch: "dispatch", KindTasklet: "tasklet", KindYield: "yield",
		KindSteal: "steal", KindBarrier: "barrier", KindIdle: "idle", KindUser: "user",
	}
	for k, w := range want {
		if k.String() != w {
			t.Fatalf("Kind(%d) = %q, want %q", k, k.String(), w)
		}
	}
}

func TestRecorderMinimumCapacity(t *testing.T) {
	r := NewRecorder(0)
	r.Instant(0, KindYield, 1)
	if len(r.Events()) != 1 {
		t.Fatal("capacity floor not applied")
	}
}
