package trace

// batchCap bounds how many units one batched dispatch interval may
// cover, so a saturated executor still publishes a fresh event a few
// hundred units at worst after the burst began.
const batchCap = 256

// Batcher coalesces an executor loop's per-unit dispatch events into
// per-burst intervals. Tracing every unit individually costs two clock
// reads per unit — more than the <2% overhead budget allows when units
// are microseconds long — so the batcher reads the clock only at burst
// boundaries: one interval spans a run of consecutive same-kind units,
// its Unit field carrying the unit count instead of an id. Time shares
// (the paper's breakdown percentages) stay exact, because the interval
// covers precisely the busy span; only per-unit attribution is
// coarsened. Clock reads chain — a flush's end timestamp is the next
// batch's start — so a saturated executor pays one read per batchCap
// units, amortized to well under a nanosecond each.
//
// A Batcher belongs to one executor loop goroutine (it is not
// synchronized) and is nil-safe like the ring it wraps. The loop calls
// Begin when it finds work, Note after each unit, Idle on an empty
// poll, and Close on shutdown:
//
//	u, ok := pop()
//	if !ok { bat.Idle(); continue }
//	bat.Begin()
//	run(u)
//	bat.Note(KindDispatch, 1)
//
// idleAfter is the Idle debounce: this many consecutive empty polls
// before the loop is considered idle. A saturated executor whose queue
// momentarily blinks empty between refills would otherwise pay the full
// idle-episode cost (two clock reads, two emits) per blink — measured
// at roughly two events per work unit on a single-CPU serve benchmark —
// so sub-threshold gaps fold into the surrounding busy burst instead.
const idleAfter = 4

type Batcher struct {
	ring      *Ring
	kind      Kind
	count     uint64
	start     int64 // burst start on the recorder clock; 0 = no burst open
	idleStart int64
	idling    bool
	empties   uint32 // consecutive empty polls since the last unit
}

// Batcher wraps the ring in a per-burst coalescer. Nil ring → nil
// batcher, whose methods all no-op.
func (r *Ring) Batcher() *Batcher {
	if r == nil {
		return nil
	}
	return &Batcher{ring: r}
}

// Begin opens a busy burst: call it when the loop has found work,
// before running it. Ends an open idle episode (emitting its KindIdle
// interval) and stamps the burst start. A no-op mid-burst, so calling
// it before every unit costs one branch.
func (b *Batcher) Begin() {
	if b == nil {
		return
	}
	b.empties = 0
	if b.start != 0 {
		return
	}
	now := b.ring.Now()
	if b.idling {
		b.ring.Emit(KindIdle, 0, b.idleStart, now-b.idleStart, 0)
		b.idling = false
	}
	b.start = now
}

// Note records n units of kind k just run. Units accumulate into the
// open batch; a kind change or the batchCap flushes the batch as one
// interval first. The caller must have opened the burst with Begin.
func (b *Batcher) Note(k Kind, n uint64) {
	if b == nil {
		return
	}
	if b.count > 0 && (k != b.kind || b.count >= batchCap) {
		b.flush()
	}
	if b.count == 0 {
		b.kind = k
	}
	b.count += n
}

// flush emits the open batch as one interval whose Unit field is the
// unit count, and chains the burst start to the flush time so the next
// batch needs no fresh clock read.
func (b *Batcher) flush() {
	now := b.ring.Now()
	if b.count > 0 {
		b.ring.Emit(b.kind, b.count, b.start, now-b.start, 0)
	}
	b.start = now
	b.count = 0
}

// Flush publishes the open batch without opening an idle episode — for
// externally driven loops (converse's master-driven processor 0) whose
// gaps between drives are not executor idleness. The chained timestamp
// is discarded so the next Begin reads a fresh clock.
func (b *Batcher) Flush() {
	if b == nil || b.count == 0 {
		return
	}
	b.flush()
	b.start = 0
}

// Idle marks an empty poll. The first idleAfter-1 consecutive calls
// only bump a counter — a busy loop whose queue blinks empty between
// refills stays "busy", its brief gaps folded into the surrounding
// burst — and the idleAfter-th opens a real idle episode, spanning
// until the next Begin. Repeated calls while already idle are free, so
// busy-wait loops may call it every empty iteration.
func (b *Batcher) Idle() {
	if b == nil || b.idling {
		return
	}
	if b.empties++; b.empties < idleAfter {
		return
	}
	b.idleNow()
}

// IdleNow opens the idle episode without the debounce — for loops about
// to park (argobots' passive idle policy), where the poll is already
// known to be a genuine idle transition, not a queue blink.
func (b *Batcher) IdleNow() {
	if b == nil || b.idling {
		return
	}
	b.idleNow()
}

func (b *Batcher) idleNow() {
	if b.count > 0 {
		b.flush() // reads the clock and leaves it in b.start
	}
	if b.start != 0 {
		b.idleStart = b.start
	} else {
		b.idleStart = b.ring.Now()
	}
	b.idling = true
	b.start = 0
}

// Close flushes whatever is open — the busy batch or the idle episode —
// and returns the ring to its recorder.
func (b *Batcher) Close() {
	if b == nil {
		return
	}
	if b.idling {
		b.ring.Interval(KindIdle, 0, b.idleStart)
		b.idling = false
	} else if b.count > 0 {
		b.flush()
	}
	b.ring.Close()
}
