package trace

import (
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Recorder owns the flight recorder's ring registry. Writers acquire
// rings (Ring) and emit into them without ever touching the recorder
// again; readers take consistent samples (Snapshot, Events) without
// stopping the writers. All timestamps are nanoseconds since the
// recorder's epoch, read from the monotonic clock exactly once per
// emission.
type Recorder struct {
	epoch    time.Time
	perRing  int
	disabled bool

	mu    sync.Mutex
	rings []*Ring // every ring ever allocated; closed rings stay until reuse
	free  []*Ring // closed rings available for reacquisition
}

// NewRecorder returns an enabled recorder whose rings each hold
// slotsPerLane events (rounded up to a power of two, minimum 16).
func NewRecorder(slotsPerLane int) *Recorder {
	n := 16
	for n < slotsPerLane {
		n <<= 1
	}
	return &Recorder{epoch: time.Now(), perRing: n}
}

// defaultRecorder builds the process-global recorder from the
// environment: LWT_TRACE_OFF=1 disables it entirely (Ring returns nil,
// so every emission reduces to a nil check), LWT_TRACE_SLOTS sizes the
// per-lane window (default 2048).
var defaultRecorder = sync.OnceValue(func() *Recorder {
	if v := os.Getenv("LWT_TRACE_OFF"); v != "" && v != "0" {
		return &Recorder{epoch: time.Now(), disabled: true}
	}
	slots := 2048
	if v := os.Getenv("LWT_TRACE_SLOTS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			slots = n
		}
	}
	return NewRecorder(slots)
})

// Default returns the process-global recorder every backend records
// into unless a caller injects its own. Built once, on first use.
func Default() *Recorder { return defaultRecorder() }

// Enabled reports whether the recorder records at all. Nil-safe.
func (r *Recorder) Enabled() bool { return r != nil && !r.disabled }

// Epoch is the recorder's time zero; Now readings are offsets from it.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Now returns nanoseconds since the epoch from the monotonic clock.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Ring acquires a single-writer event lane for the named writer: one
// goroutine owns the write side for the ring's lifetime and emission
// takes the owner-local fast path (no interlocked instructions). A
// closed ring is reused (cleared) before a new one is allocated, so a
// process that repeatedly opens and closes runtimes keeps a bounded
// ring set. On a nil or disabled recorder the result is nil, which
// every Ring method accepts.
func (r *Recorder) Ring(name string, exec int) *Ring {
	return r.ring(name, exec, false)
}

// SharedRing acquires a multi-writer event lane: any goroutine may emit
// concurrently (serve's request lanes, where completions land on
// whichever backend executor ran them). Emission claims slots with a
// fetch-add + CAS instead of the owner-local fast path.
func (r *Recorder) SharedRing(name string, exec int) *Ring {
	return r.ring(name, exec, true)
}

func (r *Recorder) ring(name string, exec int, mw bool) *Ring {
	if r == nil || r.disabled {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		rg := r.free[n-1]
		r.free = r.free[:n-1]
		rg.reset(name, exec)
		rg.mw = mw
		return rg
	}
	rg := &Ring{rec: r, name: name, exec: exec, mw: mw, mask: uint64(r.perRing - 1), slots: make([]slot, r.perRing)}
	r.rings = append(r.rings, rg)
	return rg
}

// Close returns the ring to its recorder for reuse. The caller must be
// done emitting; the ring's events remain visible in dumps until a new
// writer reacquires it. Nil-safe.
func (r *Ring) Close() {
	if r == nil {
		return
	}
	rec := r.rec
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, f := range rec.free {
		if f == r {
			return // already closed
		}
	}
	rec.free = append(rec.free, r)
}

// Events decodes every retained event across all lanes, ordered by
// start time. Safe to call while writers are emitting; see Snapshot.
func (r *Recorder) Events() []Event {
	d := r.Snapshot("")
	if d == nil {
		return nil
	}
	return d.Events
}

// Snapshot samples the recorder without stopping writers: each lane's
// published slots are decoded under the per-slot seq check, slots torn
// by a concurrent overwrite are skipped, and the surviving events are
// merged in start-time order. The result is a consistent view of the
// recent past — the flight-recorder window — not a global barrier.
func (r *Recorder) Snapshot(reason string) *Dump {
	if r == nil {
		return nil
	}
	d := &Dump{TakenAt: time.Now(), Reason: reason, Disabled: r.disabled}
	if r.disabled {
		return d
	}
	r.mu.Lock()
	rings := make([]*Ring, len(r.rings))
	copy(rings, r.rings)
	r.mu.Unlock()

	var all []decoded
	for _, rg := range rings {
		d.Lanes = append(d.Lanes, LaneInfo{
			Name:    rg.name,
			Exec:    rg.exec,
			Slots:   len(rg.slots),
			Written: rg.Written(),
			Dropped: rg.Dropped(),
		})
		all = append(all, rg.snapshot()...)
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].ev.Start.Equal(all[j].ev.Start) {
			return all[i].ev.Start.Before(all[j].ev.Start)
		}
		return all[i].order < all[j].order
	})
	d.Events = make([]Event, len(all))
	for i, de := range all {
		d.Events[i] = de.ev
	}
	return d
}

// Reset clears every lane. Only meaningful between quiescent phases
// (e.g. tests): a writer emitting concurrently with Reset may republish
// into a cleared slot.
func (r *Recorder) Reset() {
	if r == nil || r.disabled {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rg := range r.rings {
		rg.reset(rg.name, rg.exec)
	}
}
