package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Summary aggregates a trace into the per-kind time breakdown the paper
// argues from (§IX-D).
type Summary struct {
	// Counts is the number of events per kind.
	Counts map[Kind]int
	// Units sums each event's Unit field per kind. For the batched
	// executor kinds (dispatch, tasklet — see Batcher) the Unit field
	// carries the batch's unit count, so the sum is the number of work
	// units executed; for identity kinds (user, steal) Unit is an id
	// and the sum is not meaningful.
	Units map[Kind]uint64
	// ByKind is the total recorded duration per kind.
	ByKind map[Kind]time.Duration
	// Execs lists the executor identifiers seen, ascending.
	Execs []int
	// Span is the wall-clock extent from the earliest event start to
	// the latest event end.
	Span time.Duration
}

// Summarize aggregates events (from Recorder.Events or a Dump).
func Summarize(events []Event) Summary {
	s := Summary{Counts: make(map[Kind]int), Units: make(map[Kind]uint64), ByKind: make(map[Kind]time.Duration)}
	if len(events) == 0 {
		return s
	}
	execs := make(map[int]bool)
	var first, last time.Time
	for i, e := range events {
		s.Counts[e.Kind]++
		s.Units[e.Kind] += e.Unit
		s.ByKind[e.Kind] += e.Dur
		execs[e.Exec] = true
		end := e.Start.Add(e.Dur)
		if i == 0 || e.Start.Before(first) {
			first = e.Start
		}
		if i == 0 || end.After(last) {
			last = end
		}
	}
	for x := range execs {
		s.Execs = append(s.Execs, x)
	}
	sort.Ints(s.Execs)
	s.Span = last.Sub(first)
	return s
}

// total is the denominator for Fraction and the Render percentage
// column: the sum of recorded durations across all kinds.
func (s Summary) total() time.Duration {
	var t time.Duration
	for _, d := range s.ByKind {
		t += d
	}
	return t
}

// Fraction reports the share of total recorded time spent in the given
// kinds — the arithmetic behind claims like "Converse Threads expends
// up to 75% of its execution time in performing barrier and yield
// operations". 0 when nothing was recorded.
func (s Summary) Fraction(kinds ...Kind) float64 {
	t := s.total()
	if t == 0 {
		return 0
	}
	var part time.Duration
	for _, k := range kinds {
		part += s.ByKind[k]
	}
	return float64(part) / float64(t)
}

// Render formats the paper-style breakdown table: one row per kind with
// event count, total time, and percentage of recorded time.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d executors, span %v\n", len(s.Execs), s.Span.Round(time.Microsecond))
	total := s.total()
	kinds := make([]Kind, 0, len(s.Counts))
	for k := range s.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if s.ByKind[kinds[i]] != s.ByKind[kinds[j]] {
			return s.ByKind[kinds[i]] > s.ByKind[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	fmt.Fprintf(&b, "%-10s %10s %14s %8s\n", "kind", "events", "time", "share")
	for _, k := range kinds {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.ByKind[k]) / float64(total)
		}
		fmt.Fprintf(&b, "%-10s %10d %14v %7.1f%%\n",
			k.String(), s.Counts[k], s.ByKind[k].Round(time.Microsecond), pct)
	}
	return b.String()
}

// WriteChromeTrace emits the events as a Chrome trace-event JSON array
// loadable in chrome://tracing or Perfetto. Intervals become complete
// ("X") events and instants become instant ("i") events; executors map
// to thread IDs. Events carrying a lane name additionally get one
// thread_name metadata ("M") record per lane so the viewer labels rows
// by lane rather than bare executor numbers.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "["); err != nil {
		return err
	}
	var base time.Time
	for i, e := range events {
		if i == 0 || e.Start.Before(base) {
			base = e.Start
		}
	}
	n := 0
	emit := func(s string) error {
		sep := ","
		if n == 0 {
			sep = ""
		}
		n++
		_, err := io.WriteString(w, sep+s)
		return err
	}
	named := make(map[int]string)
	for _, e := range events {
		if e.Lane != "" && named[e.Exec] == "" {
			named[e.Exec] = e.Lane
		}
	}
	lanes := make([]int, 0, len(named))
	for tid := range named {
		lanes = append(lanes, tid)
	}
	sort.Ints(lanes)
	for _, tid := range lanes {
		if err := emit(fmt.Sprintf(
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`,
			tid, named[tid])); err != nil {
			return err
		}
	}
	for _, e := range events {
		ts := float64(e.Start.Sub(base)) / float64(time.Microsecond)
		var rec string
		args := fmt.Sprintf(`{"unit":%d`, e.Unit)
		if e.Label != "" {
			args += fmt.Sprintf(`,"label":%q`, e.Label)
		}
		args += "}"
		if e.Dur > 0 {
			rec = fmt.Sprintf(
				`{"name":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":%s}`,
				e.Kind.String(), e.Exec, ts, float64(e.Dur)/float64(time.Microsecond), args)
		} else {
			rec = fmt.Sprintf(
				`{"name":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":%s}`,
				e.Kind.String(), e.Exec, ts, args)
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]")
	return err
}
