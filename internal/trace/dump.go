package trace

import (
	"encoding/json"
	"io"
	"time"
)

// Dump is a flight-recorder snapshot: the retained window of events
// across every lane, plus per-lane accounting. It is the interchange
// format between a running daemon (/debug/trace, SIGUSR2, anomaly
// dumps) and offline tooling (cmd/lwttrace).
type Dump struct {
	// TakenAt is the wall-clock snapshot time.
	TakenAt time.Time `json:"taken_at"`
	// Reason records what triggered the dump: "request", "signal",
	// "anomaly: ...", or empty for programmatic snapshots.
	Reason string `json:"reason,omitempty"`
	// Disabled is true when the recorder was built with LWT_TRACE_OFF;
	// such dumps carry no lanes or events.
	Disabled bool `json:"disabled,omitempty"`
	// Lanes describes every ring in the registry, including closed
	// rings whose events are still retained.
	Lanes []LaneInfo `json:"lanes,omitempty"`
	// Events is the merged window, ordered by start time.
	Events []Event `json:"events"`
}

// LaneInfo is one ring's accounting at snapshot time.
type LaneInfo struct {
	// Name is the lane name ("argobots/es1", "serve/go/shard0", ...).
	Name string `json:"name"`
	// Exec is the owning executor's identifier.
	Exec int `json:"exec"`
	// Slots is the ring capacity; min(Written, Slots) events are retained.
	Slots int `json:"slots"`
	// Written is the lifetime claim count; Written − Slots events (when
	// positive) have been overwritten — that is the recorder working.
	Written uint64 `json:"written"`
	// Dropped counts emits abandoned because the writer was lapped a
	// full ring mid-write; nonzero means the ring is undersized.
	Dropped uint64 `json:"dropped,omitempty"`
}

// WriteTo serializes the dump as JSON.
func (d *Dump) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	err := enc.Encode(d)
	return cw.n, err
}

// ReadDump parses a dump previously serialized with WriteTo (or fetched
// from /debug/trace?format=json).
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
