package trace

import (
	"sync/atomic"
	"time"
)

// slot is one fixed-size ring entry. Every field is an atomic word so a
// writer publishes without locks and a concurrent reader's loads are
// race-free; consistency comes from the seq protocol, not from the
// individual fields.
//
// seq encodes the slot's state: 0 = never written, odd (2c+1) = claim c
// is being written, even (2c+2) = claim c is published. A reader
// accepts a slot only when it observes the same even seq before and
// after loading the fields.
type slot struct {
	seq   atomic.Uint64
	word  atomic.Uint64 // kind (low 8 bits) | label code (next 16 bits)
	unit  atomic.Uint64
	start atomic.Int64 // ns since the recorder's epoch
	dur   atomic.Int64 // ns; 0 for instants
}

// Ring is one bounded event lane of the flight recorder. An executor
// loop acquires a ring for its lifetime (Recorder.Ring) and is its only
// writer — the Chase–Lev shape: the cursor is owner-local, so claiming
// a slot costs two plain atomic stores, no interlocked instruction.
// Serve's request lanes (Recorder.SharedRing) are written by whichever
// executor completes a request; there a fetch-add claims the slot and a
// CAS takes ownership. Both paths publish with the same seq protocol
// and overwrite the oldest entry once the ring has wrapped.
//
// All methods are safe on a nil *Ring and do nothing — a disabled
// recorder hands out nil rings, so instrumentation sites need no
// configuration checks beyond the pointer they already hold.
type Ring struct {
	rec  *Recorder
	name string
	exec int
	mw   bool // multi-writer: claim via fetch-add + CAS instead of owner-local stores

	// cursor is the next claim index, monotonic over the ring's life.
	// It sits alone on its cache line: every writer bumps it, and the
	// slots after it must not share the line.
	_      [7]uint64
	cursor atomic.Uint64
	_      [7]uint64

	// dropped counts abandoned emits: a writer that stalled long enough
	// to be lapped a full ring finds its claimed slot re-claimed and
	// gives the event up rather than corrupt the newer entry.
	dropped atomic.Uint64

	mask  uint64
	slots []slot
}

// Name reports the lane name the ring was acquired under.
func (r *Ring) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Exec reports the executor identifier the ring was acquired under.
func (r *Ring) Exec() int {
	if r == nil {
		return 0
	}
	return r.exec
}

// Now returns the recorder's monotonic clock reading in nanoseconds —
// the start argument Interval expects. 0 on a nil ring.
func (r *Ring) Now() int64 {
	if r == nil {
		return 0
	}
	return r.rec.Now()
}

// Instant records a zero-duration event.
func (r *Ring) Instant(k Kind, unit uint64) {
	if r == nil {
		return
	}
	r.emit(k, unit, r.rec.Now(), 0, 0)
}

// Interval records an event spanning from start (a Now reading taken
// when the interval began) to the present.
func (r *Ring) Interval(k Kind, unit uint64, start int64) {
	if r == nil {
		return
	}
	now := r.rec.Now()
	r.emit(k, unit, start, now-start, 0)
}

// IntervalLabeled is Interval with an interned label code (LabelCode).
func (r *Ring) IntervalLabeled(k Kind, unit uint64, start int64, label uint16) {
	if r == nil {
		return
	}
	now := r.rec.Now()
	r.emit(k, unit, start, now-start, label)
}

// EmitAt records an event from wall-clock values the caller already
// holds (a time.Time taken at interval start, a measured duration)
// without reading the clock again — the zero-extra-cost path for sites
// that time the interval anyway.
func (r *Ring) EmitAt(k Kind, unit uint64, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.emit(k, unit, int64(start.Sub(r.rec.epoch)), int64(dur), 0)
}

// Emit records a fully specified event: start and dur in nanoseconds on
// the recorder's clock, label an interned code or 0.
func (r *Ring) Emit(k Kind, unit uint64, start, dur int64, label uint16) {
	if r == nil {
		return
	}
	r.emit(k, unit, start, dur, label)
}

// emit is the hot path: claim, own, publish.
func (r *Ring) emit(k Kind, unit uint64, start, dur int64, label uint16) {
	var c uint64
	var s *slot
	if r.mw {
		c = r.cursor.Add(1) - 1
		s = &r.slots[c&r.mask]
		// Take ownership of the slot: its seq must still be whatever
		// state the previous lap left (even or zero). A failed CAS means
		// another writer lapped us — a full ring of events passed while
		// this emit was stalled — and the newer claim owns the slot;
		// abandoning the event keeps published slots consistent (a
		// reader can never decode a half-A-half-B entry).
		old := s.seq.Load()
		if old%2 == 1 || old > 2*c || !s.seq.CompareAndSwap(old, 2*c+1) {
			r.dropped.Add(1)
			return
		}
	} else {
		// Owner-local claim: only this goroutine advances the cursor, so
		// a load + store replaces the interlocked fetch-add, and the odd
		// seq store alone fences concurrent readers off the slot.
		c = r.cursor.Load()
		r.cursor.Store(c + 1)
		s = &r.slots[c&r.mask]
		s.seq.Store(2*c + 1)
	}
	s.word.Store(uint64(uint8(k)) | uint64(label)<<8)
	s.unit.Store(unit)
	s.start.Store(start)
	s.dur.Store(dur)
	s.seq.Store(2*c + 2)
}

// Dropped reports abandoned emits (writers lapped mid-write). Under
// sane load this stays 0; a growing count means the ring is far too
// small for the event rate.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Written reports total claims over the ring's life; min(Written, size)
// entries are currently retained.
func (r *Ring) Written() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// reset clears the ring for reuse by a new owner: stale entries from
// the previous lane must not decode under the new lane's name.
func (r *Ring) reset(name string, exec int) {
	r.name = name
	r.exec = exec
	r.cursor.Store(0)
	r.dropped.Store(0)
	for i := range r.slots {
		r.slots[i].seq.Store(0)
	}
}

// decoded is one consistently read slot plus its claim order.
type decoded struct {
	order uint64
	ev    Event
}

// snapshot decodes every published slot that can be read consistently,
// in claim order. Torn slots (a writer racing the read) are skipped —
// the next snapshot will see them published.
func (r *Ring) snapshot() []decoded {
	if r == nil {
		return nil
	}
	out := make([]decoded, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s1 := s.seq.Load()
		if s1 == 0 || s1%2 == 1 {
			continue
		}
		word := s.word.Load()
		unit := s.unit.Load()
		start := s.start.Load()
		dur := s.dur.Load()
		if s.seq.Load() != s1 {
			continue // overwritten mid-read
		}
		k := Kind(word & 0xFF)
		if int(k) >= numKinds || dur < 0 {
			continue // implausible decode; treat as torn
		}
		out = append(out, decoded{
			order: (s1 - 2) / 2,
			ev: Event{
				Lane:  r.name,
				Exec:  r.exec,
				Kind:  k,
				Unit:  unit,
				Start: r.rec.epoch.Add(time.Duration(start)),
				Dur:   time.Duration(dur),
				Label: labelName(uint16(word >> 8)),
			},
		})
	}
	return out
}
