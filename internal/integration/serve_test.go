package integration

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	lwt "repro"
	"repro/internal/core"
	"repro/internal/serve"
)

// TestServeEveryBackend drives the same submit/await workload through
// the serving subsystem on every registered backend: concurrent
// producers, tasklet- and ULT-shaped requests, value/error/panic
// results. This is the end-to-end claim of the serving layer — the
// reduced Table II function set plus the pump suffices to serve
// arbitrary-goroutine traffic on every emulated runtime.
func TestServeEveryBackend(t *testing.T) {
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := serve.New(serve.Options{Backend: backend, Threads: 2, QueueDepth: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sub := s.Submitter()

			const producers, per = 4, 25
			var wg sync.WaitGroup
			var sum atomic.Int64
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if i%5 == 0 {
							// ULT-shaped: spawn and join a child on the
							// serving runtime.
							f, err := serve.SubmitULT(sub, context.Background(), func(c core.Ctx) (int, error) {
								var child int
								h := c.ULTCreate(func(core.Ctx) { child = i })
								c.Join(h)
								return child, nil
							})
							if err != nil {
								t.Errorf("SubmitULT: %v", err)
								return
							}
							if v, err := f.Wait(context.Background()); err != nil || v != i {
								t.Errorf("ULT wait = (%v, %v), want (%d, nil)", v, err, i)
								return
							}
						} else {
							f, err := serve.Submit(sub, context.Background(), func() (int, error) {
								sum.Add(1)
								return p*per + i, nil
							})
							if err != nil {
								t.Errorf("Submit: %v", err)
								return
							}
							if v, err := f.Wait(context.Background()); err != nil || v != p*per+i {
								t.Errorf("wait = (%v, %v), want (%d, nil)", v, err, p*per+i)
								return
							}
						}
					}
				}(p)
			}
			wg.Wait()

			// Panic capture must hold on every backend's executors.
			f, err := serve.Submit(sub, context.Background(), func() (int, error) { panic(backend) })
			if err != nil {
				t.Fatal(err)
			}
			_, werr := f.Wait(context.Background())
			var pe *serve.PanicError
			if !errors.As(werr, &pe) || pe.Value != backend {
				t.Fatalf("panic result = %v, want PanicError(%q)", werr, backend)
			}

			m := s.Metrics()
			wantTasklets := int64(producers * per * 4 / 5)
			if sum.Load() != wantTasklets {
				t.Fatalf("tasklet bodies ran %d times, want %d", sum.Load(), wantTasklets)
			}
			if m.Completed != uint64(producers*per+1) {
				t.Fatalf("Completed = %d, want %d", m.Completed, producers*per+1)
			}
			if m.InFlight != 0 || m.QueueDepth != 0 {
				t.Fatalf("leftover work: inflight=%d queued=%d", m.InFlight, m.QueueDepth)
			}
		})
	}
}

// TestServeSaturationEveryBackend verifies the admission-control
// contract on every backend: with the single in-flight slot occupied and
// the queue full, TrySubmit fast-rejects with ErrSaturated instead of
// blocking or deadlocking, and a blocking Submit honors context
// cancellation while stuck on the full queue.
func TestServeSaturationEveryBackend(t *testing.T) {
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := serve.New(serve.Options{
				Backend: backend, Threads: 2,
				QueueDepth: 2, MaxInFlight: 1, Batch: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			started := make(chan struct{})
			release := make(chan struct{})
			defer s.Close()
			sub := s.Submitter()
			if _, err := serve.Submit(sub, context.Background(), func() (int, error) {
				close(started)
				<-release
				return 0, nil
			}); err != nil {
				t.Fatal(err)
			}
			<-started // occupies the only in-flight slot until released
			// Fill the depth-2 queue: one plain request plus one whose
			// context will die while it waits.
			if _, err := serve.TrySubmit(sub, func() (int, error) { return 1, nil }); err != nil {
				t.Fatalf("fill: %v", err)
			}
			qctx, qcancel := context.WithCancel(context.Background())
			f, err := serve.Submit(sub, qctx, func() (int, error) { return 9, nil })
			if err != nil {
				t.Fatalf("queued-cancel candidate: %v", err)
			}
			// Saturation must fast-reject, not block or deadlock.
			if _, err := serve.TrySubmit(sub, func() (int, error) { return 0, nil }); !errors.Is(err, serve.ErrSaturated) {
				t.Fatalf("TrySubmit on full queue = %v, want ErrSaturated", err)
			}
			// A blocking Submit stuck on the full queue honors its
			// context.
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			if _, err := serve.Submit(sub, ctx, func() (int, error) { return 0, nil }); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("blocked Submit = %v, want DeadlineExceeded", err)
			}
			// A queued request whose context dies before launch resolves
			// to its context error once the pump reaches it.
			qcancel()
			close(release)
			if _, werr := f.Wait(context.Background()); !errors.Is(werr, context.Canceled) {
				t.Fatalf("queued-cancel wait err = %v, want context.Canceled", werr)
			}
		})
	}
}
