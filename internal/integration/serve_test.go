package integration

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	lwt "repro"
	"repro/internal/core"
	"repro/internal/serve"
)

// TestServeEveryBackend drives the same submit/await workload through
// the serving subsystem on every registered backend: concurrent
// producers, tasklet- and ULT-shaped requests, value/error/panic
// results. This is the end-to-end claim of the serving layer — the
// reduced Table II function set plus the pump suffices to serve
// arbitrary-goroutine traffic on every emulated runtime.
func TestServeEveryBackend(t *testing.T) {
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := serve.New(serve.Options{Backend: backend, Threads: 2, Shards: 1, QueueDepth: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sub := s.Submitter()

			const producers, per = 4, 25
			var wg sync.WaitGroup
			var sum atomic.Int64
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if i%5 == 0 {
							// ULT-shaped: spawn and join a child on the
							// serving runtime.
							f, err := serve.DoULT(sub, context.Background(), func(c core.Ctx) (int, error) {
								var child int
								h := c.ULTCreate(func(core.Ctx) { child = i })
								c.Join(h)
								return child, nil
							}, serve.Req{})
							if err != nil {
								t.Errorf("SubmitULT: %v", err)
								return
							}
							if v, err := f.Wait(context.Background()); err != nil || v != i {
								t.Errorf("ULT wait = (%v, %v), want (%d, nil)", v, err, i)
								return
							}
						} else {
							f, err := serve.Do(sub, context.Background(), func() (int, error) {
								sum.Add(1)
								return p*per + i, nil
							}, serve.Req{})
							if err != nil {
								t.Errorf("Submit: %v", err)
								return
							}
							if v, err := f.Wait(context.Background()); err != nil || v != p*per+i {
								t.Errorf("wait = (%v, %v), want (%d, nil)", v, err, p*per+i)
								return
							}
						}
					}
				}(p)
			}
			wg.Wait()

			// Panic capture must hold on every backend's executors.
			f, err := serve.Do(sub, context.Background(), func() (int, error) { panic(backend) }, serve.Req{})
			if err != nil {
				t.Fatal(err)
			}
			_, werr := f.Wait(context.Background())
			var pe *serve.PanicError
			if !errors.As(werr, &pe) || pe.Value != backend {
				t.Fatalf("panic result = %v, want PanicError(%q)", werr, backend)
			}

			m := s.Metrics()
			wantTasklets := int64(producers * per * 4 / 5)
			if sum.Load() != wantTasklets {
				t.Fatalf("tasklet bodies ran %d times, want %d", sum.Load(), wantTasklets)
			}
			if m.Completed != uint64(producers*per+1) {
				t.Fatalf("Completed = %d, want %d", m.Completed, producers*per+1)
			}
			if m.InFlight != 0 || m.QueueDepth != 0 {
				t.Fatalf("leftover work: inflight=%d queued=%d", m.InFlight, m.QueueDepth)
			}
		})
	}
}

// TestServeShardedEveryBackend runs the shard pool on every registered
// backend: four independent runtimes behind one server, round-robin
// routed unkeyed traffic (deterministically hitting every shard), keyed
// traffic pinned by session, and ULT-shaped requests spawning children
// on whichever shard they land on. Per-shard metrics must account for
// exactly the traffic each shard saw.
func TestServeShardedEveryBackend(t *testing.T) {
	const shards = 4
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := serve.New(serve.Options{
				Backend: backend, Threads: 1, Shards: shards,
				Router: &serve.RoundRobin{}, QueueDepth: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if s.NumShards() != shards {
				t.Fatalf("NumShards = %d, want %d", s.NumShards(), shards)
			}
			sub := s.Submitter()

			const producers, per = 4, 20
			keyed := make([]uint64, shards)
			var keyedMu sync.Mutex
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					key := "session-" + string(rune('a'+p))
					for i := 0; i < per; i++ {
						switch i % 4 {
						case 0:
							// ULT-shaped: spawn and join a child on the
							// shard this request routed to.
							f, err := serve.DoULT(sub, context.Background(), func(c core.Ctx) (int, error) {
								var child int
								h := c.ULTCreate(func(core.Ctx) { child = i })
								c.Join(h)
								return child, nil
							}, serve.Req{})
							if err != nil {
								t.Errorf("SubmitULT: %v", err)
								return
							}
							if v, err := f.Wait(context.Background()); err != nil || v != i {
								t.Errorf("ULT wait = (%v, %v), want (%d, nil)", v, err, i)
								return
							}
						case 1:
							// Keyed: this producer's whole session pins to
							// one shard.
							keyedMu.Lock()
							keyed[s.ShardOf(key)]++
							keyedMu.Unlock()
							f, err := serve.Do(sub, context.Background(), func() (int, error) { return p, nil }, serve.Req{Key: key})
							if err != nil {
								t.Errorf("SubmitKeyed: %v", err)
								return
							}
							if v, err := f.Wait(context.Background()); err != nil || v != p {
								t.Errorf("keyed wait = (%v, %v), want (%d, nil)", v, err, p)
								return
							}
						default:
							f, err := serve.Do(sub, context.Background(), func() (int, error) { return p*per + i, nil }, serve.Req{})
							if err != nil {
								t.Errorf("Submit: %v", err)
								return
							}
							if v, err := f.Wait(context.Background()); err != nil || v != p*per+i {
								t.Errorf("wait = (%v, %v), want (%d, nil)", v, err, p*per+i)
								return
							}
						}
					}
				}(p)
			}
			wg.Wait()

			agg := s.Metrics()
			if agg.Completed != producers*per {
				t.Fatalf("Completed = %d, want %d", agg.Completed, producers*per)
			}
			sm := s.ShardMetrics()
			var sum uint64
			hit := 0
			for i, m := range sm {
				sum += m.Completed
				if m.Completed > 0 {
					hit++
				}
				// Every shard saw at least its keyed sessions.
				if m.Submitted < keyed[i] {
					t.Fatalf("shard %d submitted %d < %d keyed requests pinned to it", i, m.Submitted, keyed[i])
				}
			}
			if sum != agg.Completed {
				t.Fatalf("shard completions sum %d != aggregate %d", sum, agg.Completed)
			}
			// Round-robin over 60+ unkeyed requests deterministically
			// touches every shard.
			if hit != shards {
				t.Fatalf("traffic reached only %d of %d shards", hit, shards)
			}
			if agg.InFlight != 0 || agg.QueueDepth != 0 {
				t.Fatalf("leftover work: inflight=%d queued=%d", agg.InFlight, agg.QueueDepth)
			}
		})
	}
}

// TestServeShardedDrainUnderLoad closes a 4-shard server while
// producers are still submitting on every backend: Close must stop
// admission, run down every shard's queue, and leave no accepted Future
// unresolved — the no-dropped-futures drain contract under live load.
func TestServeShardedDrainUnderLoad(t *testing.T) {
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := serve.New(serve.Options{
				Backend: backend, Threads: 1, Shards: 4,
				QueueDepth: 16, MaxInFlight: 8, Batch: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			sub := s.Submitter()
			var mu sync.Mutex
			var accepted []*serve.Future[int]
			var wg sync.WaitGroup
			for p := 0; p < 4; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; ; i++ {
						var f *serve.Future[int]
						var err error
						switch i % 3 {
						case 0:
							f, err = serve.Do(sub, nil, func() (int, error) { return i, nil }, serve.Req{NonBlocking: true})
						case 1:
							f, err = serve.Do(sub, context.Background(), func() (int, error) { return i, nil }, serve.Req{})
						default:
							f, err = serve.Do(sub, context.Background(), func() (int, error) { return i, nil }, serve.Req{Key: "drain-session"})
						}
						if errors.Is(err, serve.ErrClosed) {
							return // the drain shut the door: expected exit
						}
						if errors.Is(err, serve.ErrSaturated) {
							continue
						}
						if err != nil {
							t.Errorf("submit: %v", err)
							return
						}
						mu.Lock()
						accepted = append(accepted, f)
						mu.Unlock()
					}
				}(p)
			}
			// Close while the producers are mid-flight.
			time.Sleep(2 * time.Millisecond)
			s.Close()
			wg.Wait()

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			resolved := 0
			for i, f := range accepted {
				if _, err := f.Wait(ctx); err != nil && !errors.Is(err, serve.ErrClosed) {
					t.Fatalf("future %d resolved to %v", i, err)
				}
				if !f.Ready() {
					t.Fatalf("future %d not resolved after drain", i)
				}
				resolved++
			}
			if resolved != len(accepted) {
				t.Fatalf("resolved %d of %d accepted futures", resolved, len(accepted))
			}
			// Drain accounting: every accepted request either ran or was
			// rejected at the door — nothing vanished.
			m := s.Metrics()
			if m.Submitted != m.Completed+m.Rejected {
				t.Fatalf("drain accounting: submitted %d != completed %d + rejected %d",
					m.Submitted, m.Completed, m.Rejected)
			}
			if int(m.Submitted) != len(accepted) {
				t.Fatalf("Submitted = %d, accepted futures = %d", m.Submitted, len(accepted))
			}
		})
	}
}

// TestServeSaturationEveryBackend verifies the admission-control
// contract on every backend: with the single in-flight slot occupied and
// the queue full, TrySubmit fast-rejects with ErrSaturated instead of
// blocking or deadlocking, and a blocking Submit honors context
// cancellation while stuck on the full queue.
func TestServeSaturationEveryBackend(t *testing.T) {
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := serve.New(serve.Options{
				Backend: backend, Threads: 2, Shards: 1,
				QueueDepth: 2, MaxInFlight: 1, Batch: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			started := make(chan struct{})
			release := make(chan struct{})
			defer s.Close()
			sub := s.Submitter()
			if _, err := serve.Do(sub, context.Background(), func() (int, error) {
				close(started)
				<-release
				return 0, nil
			}, serve.Req{}); err != nil {
				t.Fatal(err)
			}
			<-started // occupies the only in-flight slot until released
			// Fill the depth-2 queue: one plain request plus one whose
			// context will die while it waits.
			if _, err := serve.Do(sub, nil, func() (int, error) { return 1, nil }, serve.Req{NonBlocking: true}); err != nil {
				t.Fatalf("fill: %v", err)
			}
			qctx, qcancel := context.WithCancel(context.Background())
			f, err := serve.Do(sub, qctx, func() (int, error) { return 9, nil }, serve.Req{})
			if err != nil {
				t.Fatalf("queued-cancel candidate: %v", err)
			}
			// Saturation must fast-reject, not block or deadlock.
			if _, err := serve.Do(sub, nil, func() (int, error) { return 0, nil }, serve.Req{NonBlocking: true}); !errors.Is(err, serve.ErrSaturated) {
				t.Fatalf("TrySubmit on full queue = %v, want ErrSaturated", err)
			}
			// A blocking Submit stuck on the full queue honors its
			// context.
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			if _, err := serve.Do(sub, ctx, func() (int, error) { return 0, nil }, serve.Req{}); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("blocked Submit = %v, want DeadlineExceeded", err)
			}
			// A queued request whose context dies before launch resolves
			// to its context error once the pump reaches it.
			qcancel()
			close(release)
			if _, werr := f.Wait(context.Background()); !errors.Is(werr, context.Canceled) {
				t.Fatalf("queued-cancel wait err = %v, want context.Canceled", werr)
			}
		})
	}
}
