package integration

import (
	"net"
	"testing"
	"time"

	lwt "repro"
)

// TestNoGoroutineLeakAcrossAsyncIOCycles is the async-I/O twin of the
// spawn-free regression gate: a steady-state cycle of parked sleeps and
// reactor-driven reads must not accumulate goroutines on any backend.
// The reactor itself is one permanent goroutine — started during warmup
// so the baseline includes it — and the portable read path's completer
// goroutines are one-shot: each exits when its operation completes, so
// the settled count must stay flat across 10k cycles.
func TestNoGoroutineLeakAcrossAsyncIOCycles(t *testing.T) {
	const cycles = 10_000
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			r, err := lwt.Open(lwt.Config{Backend: backend, Executors: 2})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer r.Finalize()

			// A feeder goroutine keeps one byte available on the pipe;
			// net.Pipe writes rendezvous with reads, so it stays blocked
			// until a cycle consumes. Started before the baseline, shut
			// down by the deferred Close after the verdict.
			client, server := net.Pipe()
			defer client.Close()
			defer server.Close()
			go func() {
				one := []byte{42}
				for {
					if _, err := client.Write(one); err != nil {
						return
					}
				}
			}()

			buf := make([]byte, 1)
			cycle := func(i int) {
				r.Join(r.ULTCreate(func(c lwt.Ctx) {
					if i%2 == 0 {
						lwt.Sleep(c, time.Microsecond)
					} else {
						lwt.ReadIO(c, server, buf)
					}
				}))
			}
			// Warm the descriptor pools, the op pool, and the reactor
			// goroutine to steady state before taking the baseline.
			for i := 0; i < 200; i++ {
				cycle(i)
			}
			base := settledGoroutines()
			for i := 0; i < cycles; i++ {
				cycle(i)
			}
			deadline := time.Now().Add(2 * time.Second)
			after := settledGoroutines()
			for after > base+50 && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
				after = settledGoroutines()
			}
			if after > base+50 {
				t.Fatalf("goroutines grew from %d to %d across %d async-I/O cycles",
					base, after, cycles)
			}
		})
	}
}
