// Package integration holds cross-module scenario tests: each one drives
// several subsystems together (unified API + emulation + substrate +
// kernels) and asserts a mechanism the paper's evaluation relies on,
// using deterministic counters rather than wall-clock comparisons.
package integration

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/argobots"
	"repro/internal/blas"
	"repro/internal/converse"
	"repro/internal/core"
	"repro/internal/massivethreads"
	"repro/internal/microbench"
	"repro/internal/omplwt"
	"repro/internal/openmp"
	"repro/internal/qthreads"
	"repro/internal/trace"
)

// TestNestedThreadExplosionGCCvsICC reproduces §IX-C's mechanism with
// counters instead of time: running the Listing 3 nested loop, the gcc
// flavor must create a fresh team per nested pragma while icc's pool
// bounds creation — the cause of the paper's 35,036-thread count.
func TestNestedThreadExplosionGCCvsICC(t *testing.T) {
	const threads, outer = 4, 24
	run := func(flavor openmp.Flavor) uint64 {
		rt := openmp.New(openmp.Config{Flavor: flavor, NumThreads: threads, WaitPolicy: openmp.Passive})
		defer rt.Close()
		rt.Parallel(func(tc *openmp.TeamCtx) {
			lo, hi := openmp.ChunkRange(outer, tc.NumThreads(), tc.TID())
			for i := lo; i < hi; i++ {
				tc.ParallelFor(4, func(j int) {})
			}
		})
		return rt.ThreadsCreated()
	}
	gcc := run(openmp.GCC)
	icc := run(openmp.ICC)
	// gcc: 3 top-level workers + 3 fresh workers per nested region × 24
	// regions = 75. icc reuses pooled threads across regions.
	if gcc < 24*3 {
		t.Fatalf("gcc created %d threads, want >= 72 (one fresh team per pragma)", gcc)
	}
	if icc*4 > gcc {
		t.Fatalf("icc created %d threads vs gcc %d; pool reuse should be at least 4x better", icc, gcc)
	}
}

// TestWorkFirstExecutesEagerly distinguishes the creation policies with
// counters: under work-first a batch of creations from the main flow is
// mostly executed by creation time; under help-first nothing has run
// until the creator yields.
func TestWorkFirstExecutesEagerly(t *testing.T) {
	const n = 50
	countStarted := func(policy massivethreads.Policy) int64 {
		rt := massivethreads.Init(1, policy) // one worker: no thieves
		defer rt.Finalize()
		var started atomic.Int64
		ths := make([]*massivethreads.Thread, n)
		for i := range ths {
			ths[i] = rt.Create(func(c *massivethreads.Context) { started.Add(1) })
		}
		atCreation := started.Load()
		for _, th := range ths {
			rt.Join(th)
		}
		return atCreation
	}
	if got := countStarted(massivethreads.WorkFirst); got != n {
		t.Fatalf("work-first had started %d of %d at creation time, want all", got, n)
	}
	if got := countStarted(massivethreads.HelpFirst); got != 0 {
		t.Fatalf("help-first had started %d at creation time, want 0", got)
	}
}

// TestTaskletVsULTCostOrdering asserts §VI's mechanism without timing:
// a tasklet creation performs no goroutine spawn, so creating many
// tasklets must allocate far fewer goroutine stacks than ULTs. Proxy:
// both kinds complete the same workload, and the Argobots runtime's
// executor counters attribute them correctly.
func TestTaskletVsULTCostOrdering(t *testing.T) {
	rec := trace.NewRecorder(1 << 16)
	rt := argobots.Init(argobots.Config{XStreams: 2, Tracer: rec})
	const n = 100
	tks := make([]*argobots.Task, n)
	for i := range tks {
		tks[i] = rt.TaskCreate(func() {})
	}
	for _, tk := range tks {
		rt.TaskFree(tk)
	}
	ths := make([]*argobots.Thread, n)
	for i := range ths {
		ths[i] = rt.ThreadCreate(func(*argobots.Context) {})
	}
	for _, th := range ths {
		rt.ThreadFree(th)
	}
	rt.Finalize()
	sum := trace.Summarize(rec.Events())
	// Executor lanes batch dispatch events (trace.Batcher), so unit
	// counts live in the summed Unit fields, not the event count.
	if sum.Units[trace.KindTasklet] != n {
		t.Fatalf("tasklet executions = %d, want %d", sum.Units[trace.KindTasklet], n)
	}
	if sum.Units[trace.KindDispatch] < n {
		t.Fatalf("ULT dispatches = %d, want >= %d", sum.Units[trace.KindDispatch], n)
	}
}

// TestQthreadsLoopMatchesBLAS drives the Qthreads utility layer over the
// BLAS kernel and cross-checks against the sequential result.
func TestQthreadsLoopMatchesBLAS(t *testing.T) {
	rt := qthreads.MustInit(qthreads.PerCPU(4))
	defer rt.Finalize()
	const n = 10_000
	v := make([]float32, n)
	blas.Iota(v)
	want := make([]float32, n)
	copy(want, v)
	blas.Sscal(want, 2)

	rt.Loop(0, n, func(i int) { blas.SscalElem(v, 2, i) })
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, v[i], want[i])
		}
	}
	// And the reduction path agrees with Sasum.
	got := rt.LoopAccum(0, n, 0,
		func(a, b float64) float64 { return a + b },
		func(i int) float64 { return float64(v[i]) })
	if math.Abs(got-float64(blas.Sasum(v))) > 1e-2*got {
		t.Fatalf("LoopAccum = %v, Sasum = %v", got, blas.Sasum(v))
	}
}

// TestDirectiveLayerAgreesAcrossBackends runs the same reduction through
// the directive layer on every LWT backend and checks all results agree.
func TestDirectiveLayerAgreesAcrossBackends(t *testing.T) {
	const n = 5000
	want := float64(n*(n-1)) / 2
	for _, backend := range core.Backends() {
		rt := omplwt.MustOpen(omplwt.Config{Backend: backend, Executors: 3})
		got := rt.ReduceFloat64(n, omplwt.Dynamic, 64,
			func(a, b float64) float64 { return a + b }, 0,
			func(i int) float64 { return float64(i) })
		rt.Close()
		if got != want {
			t.Fatalf("%s: reduction = %v, want %v", backend, got, want)
		}
	}
}

// TestMicrobenchAllFiguresProduceSaneSeries sweeps every figure pattern
// at tiny scale over two systems and sanity-checks the series structure
// (the full harness behind cmd/lwtbench).
func TestMicrobenchAllFiguresProduceSaneSeries(t *testing.T) {
	prm := microbench.Params{
		ForIters: 50, Tasks: 30, NestedOuter: 4, NestedInner: 6,
		Parents: 4, Children: 3, Reps: 2,
	}
	specs := []string{"Argobots Tasklet", "gcc"}
	for _, p := range []microbench.Pattern{2, 3, 4, 5, 6, 7, 8} {
		for _, name := range specs {
			spec, ok := microbench.FindSpec(name)
			if !ok {
				t.Fatalf("spec %q missing", name)
			}
			se := microbench.Sweep(spec, p, []int{1, 2}, prm)
			if len(se.Points) != 2 {
				t.Fatalf("%v/%s: %d points", p, name, len(se.Points))
			}
			for _, pt := range se.Points {
				if pt.S.Mean < 0 || pt.S.Reps != prm.Reps {
					t.Fatalf("%v/%s: bad stats %+v", p, name, pt.S)
				}
			}
		}
	}
}

// TestConverseSyncShareObservable ties the trace module to the Converse
// runtime: after a barrier-joined workload, the recorded barrier+yield
// share must be the dominant component of the master's recorded spans —
// §IX-D's claim expressed through the tracer.
func TestConverseSyncShareObservable(t *testing.T) {
	rec := trace.NewRecorder(1 << 16)
	rt := converse.Init(4)
	rt.SetTracer(rec)
	defer rt.Finalize()
	for i := 0; i < 200; i++ {
		rt.SyncSend(i%4, func(*converse.Proc) {})
	}
	rt.Barrier()
	sum := trace.Summarize(rec.Events())
	if frac := sum.Fraction(trace.KindBarrier, trace.KindYield); frac < 0.99 {
		// The master's only recorded spans here are sync spans.
		t.Fatalf("sync share = %v, want ~1.0 for a pure barrier join", frac)
	}
}
