package integration

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	lwt "repro"
	"repro/internal/core"
	"repro/internal/serve"
)

// TestServeDeadlineEveryBackend runs the deadline/cancellation contract
// on every registered backend: a parked handler wakes early with
// ErrCanceled when its budget runs out (park-wake on AsyncIO backends,
// yield-poll elsewhere — same observable behavior), and a queued
// request whose budget dies before launch is shed as Expired.
func TestServeDeadlineEveryBackend(t *testing.T) {
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := serve.New(serve.Options{Backend: backend, Threads: 2, Shards: 1, QueueDepth: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sub := s.Submitter()

			// Running-handler cancellation: the Sleep must end in
			// ErrCanceled long before its nominal duration.
			f, err := serve.DoULT(sub, context.Background(), func(c core.Ctx) (bool, error) {
				return core.Sleep(c, 30*time.Second) == core.ErrCanceled, nil
			}, serve.Req{Deadline: time.Now().Add(30 * time.Millisecond)})
			if err != nil {
				t.Fatal(err)
			}
			waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if canceled, err := f.Wait(waitCtx); err != nil || !canceled {
				t.Fatalf("cancelable Sleep = (%v, %v), want (true, nil)", canceled, err)
			}

			// Queue shed: trap a request behind a blocked executor pool
			// until its budget is gone.
			s2, err := serve.New(serve.Options{
				Backend: backend, Threads: 2, Shards: 1,
				QueueDepth: 4, MaxInFlight: 1, Batch: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			sub2 := s2.Submitter()
			started := make(chan struct{})
			release := make(chan struct{})
			if _, err := serve.Do(sub2, context.Background(), func() (int, error) {
				close(started)
				<-release
				return 0, nil
			}, serve.Req{}); err != nil {
				t.Fatal(err)
			}
			<-started
			ef, err := serve.Do(sub2, nil, func() (int, error) { return 1, nil }, serve.Req{Deadline: time.Now().Add(10 * time.Millisecond), NonBlocking: true})
			if err != nil {
				t.Fatal(err)
			}
			time.Sleep(20 * time.Millisecond)
			close(release)
			if _, werr := ef.Wait(context.Background()); !errors.Is(werr, serve.ErrExpired) {
				t.Fatalf("queued expiry = %v, want ErrExpired", werr)
			}
			if got := s2.Metrics().Expired; got != 1 {
				t.Fatalf("Expired = %d, want 1", got)
			}
		})
	}
}

// TestServeDeadlineHammerEveryBackend is the integration variant of the
// abandoned-Wait satellite: on every backend, concurrent producers mix
// plain, deadlined, and cancelled-mid-flight requests, abandon half
// their Waits, and the server must drain to the extended accounting
// identity with every accepted Future resolved.
func TestServeDeadlineHammerEveryBackend(t *testing.T) {
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			s, err := serve.New(serve.Options{
				Backend: backend, Threads: 2, Shards: 2,
				QueueDepth: 32, MaxInFlight: 4, Batch: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			sub := s.Submitter()

			const producers, per = 4, 16
			var mu sync.Mutex
			var accepted []*serve.Future[int]
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						var f *serve.Future[int]
						var err error
						switch i % 4 {
						case 0:
							// Tight budget a queued request may miss.
							f, err = serve.Do(sub, nil, func() (int, error) { return i, nil }, serve.Req{Deadline: time.Now().Add(time.Duration(i%3) * time.Millisecond), NonBlocking: true})
						case 1:
							// ULT whose budget cancels its park mid-run.
							f, err = serve.DoULT(sub, context.Background(), func(c core.Ctx) (int, error) {
								_ = core.Sleep(c, time.Duration(i%4)*time.Millisecond)
								return i, nil
							}, serve.Req{Deadline: time.Now().Add(5 * time.Millisecond)})
						case 2:
							// Submission context cancelled while in flight.
							ctx, cancel := context.WithCancel(context.Background())
							f, err = serve.Do(sub, ctx, func() (int, error) { return i, nil }, serve.Req{})
							cancel()
						default:
							f, err = serve.Do(sub, context.Background(), func() (int, error) { return i, nil }, serve.Req{})
						}
						if errors.Is(err, serve.ErrSaturated) || errors.Is(err, serve.ErrExpired) {
							continue
						}
						if err != nil {
							t.Errorf("submit: %v", err)
							return
						}
						if i%2 == 0 {
							// Abandon this Wait: cancel the wait context and
							// walk away before the request resolves.
							wctx, wcancel := context.WithCancel(context.Background())
							wcancel()
							_, _ = f.Wait(wctx)
						}
						mu.Lock()
						accepted = append(accepted, f)
						mu.Unlock()
					}
				}(p)
			}
			wg.Wait()
			s.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i, f := range accepted {
				if _, err := f.Wait(ctx); err != nil &&
					!errors.Is(err, serve.ErrClosed) && !errors.Is(err, serve.ErrExpired) &&
					!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("future %d resolved to unexpected error %v", i, err)
				}
				if !f.Ready() {
					t.Fatalf("future %d not resolved after drain", i)
				}
			}
			m := s.Metrics()
			if m.Submitted != m.Completed+m.Rejected+m.Expired {
				t.Fatalf("identity broken: Submitted=%d Completed=%d Rejected=%d Expired=%d",
					m.Submitted, m.Completed, m.Rejected, m.Expired)
			}
			if int(m.Submitted) != len(accepted) {
				t.Fatalf("Submitted = %d, accepted futures = %d", m.Submitted, len(accepted))
			}
		})
	}
}
