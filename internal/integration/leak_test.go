package integration

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	lwt "repro"
)

// settledGoroutines lets in-flight terminal hand-backs land, then reports
// the goroutine count.
func settledGoroutines() int {
	runtime.GC()
	for i := 0; i < 10; i++ {
		runtime.Gosched()
	}
	return runtime.NumGoroutine()
}

// TestNoGoroutineLeakAcrossCreateJoinCycles is the spawn-free regression
// gate: with trampoline descriptor reuse, a steady-state create/join
// cycle must not spawn (ULTs reuse the parked goroutine in their pooled
// descriptor) and must not leak (killed trampolines exit; watcher
// goroutines are gone from the join paths). The count may wobble by the
// few descriptors whose terminal release lags a beat behind the join,
// but it must stay flat across 10k cycles on every backend.
func TestNoGoroutineLeakAcrossCreateJoinCycles(t *testing.T) {
	const cycles = 10_000
	for _, backend := range lwt.Backends() {
		t.Run(backend, func(t *testing.T) {
			r, err := lwt.Open(lwt.Config{Backend: backend, Executors: 2})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer r.Finalize()

			cycle := func(i int) {
				if i%2 == 0 {
					r.Join(r.TaskletCreate(func() {}))
				} else {
					r.Join(r.ULTCreate(func(lwt.Ctx) {}))
				}
			}
			// Warm the descriptor pools to their steady state.
			for i := 0; i < 200; i++ {
				cycle(i)
			}
			base := settledGoroutines()
			for i := 0; i < cycles; i++ {
				cycle(i)
			}
			// The last few terminal hand-backs may still be in flight;
			// give them a bounded moment to settle before judging.
			deadline := time.Now().Add(2 * time.Second)
			after := settledGoroutines()
			for after > base+50 && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
				after = settledGoroutines()
			}
			if after > base+50 {
				t.Fatalf("goroutines grew from %d to %d across %d create/join cycles",
					base, after, cycles)
			}
		})
	}
}

// TestBulkCreateMatchesSingleCreate exercises the unified bulk-creation
// API on every backend: every body runs exactly once, handles are
// joinable, and the batch behaves like the equivalent create loop.
func TestBulkCreateMatchesSingleCreate(t *testing.T) {
	const n = 300
	for _, backend := range lwt.Backends() {
		for _, kind := range []string{"tasklet", "ult"} {
			t.Run(fmt.Sprintf("%s/%s", backend, kind), func(t *testing.T) {
				r, err := lwt.Open(lwt.Config{Backend: backend, Executors: 3})
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				defer r.Finalize()

				hits := make([]int32, n)
				var hs []lwt.Handle
				if kind == "tasklet" {
					fns := make([]func(), n)
					for i := range fns {
						i := i
						fns[i] = func() { hits[i]++ }
					}
					hs = r.TaskletCreateBulk(fns)
				} else {
					fns := make([]func(lwt.Ctx), n)
					for i := range fns {
						i := i
						fns[i] = func(lwt.Ctx) { hits[i]++ }
					}
					hs = r.ULTCreateBulk(fns)
				}
				if len(hs) != n {
					t.Fatalf("got %d handles, want %d", len(hs), n)
				}
				r.JoinAll(hs)
				for i, h := range hs {
					if !h.Done() {
						t.Fatalf("handle %d not done after join", i)
					}
					if hits[i] != 1 {
						t.Fatalf("body %d ran %d times, want 1", i, hits[i])
					}
				}
			})
		}
	}
}
