package gothreads

import (
	"runtime"
	"sync"

	"repro/internal/ult"
)

// Chan is the model's communication channel — the synchronization
// procedure §III-F credits Go with: "an out-of-order communication
// channel that, from the point of view of performance, can obtain better
// results than the sequential mechanisms". A goroutine that blocks on a
// full/empty channel suspends and releases its scheduler thread, exactly
// like the model's Join; senders and receivers are matched in completion
// order, not arrival order.
type Chan struct {
	rt  *Runtime
	mu  sync.Mutex
	buf []uint64
	cap int
	// waiters parked on the channel, by direction.
	recvWaiters []*ult.ULT
	sendWaiters []*ult.ULT
	closed      bool
}

// NewChan creates a channel with the given buffer capacity (0 is not
// supported in the model; rendezvous behaviour comes from capacity 1
// plus the suspend protocol).
func (rt *Runtime) NewChan(capacity int) *Chan {
	if capacity < 1 {
		capacity = 1
	}
	return &Chan{rt: rt, cap: capacity}
}

// wake moves a parked ULT back to the global run queue.
func (c *Chan) wake(u *ult.ULT) {
	go func() {
		for !u.Resume() {
			if u.Done() {
				return // waiter completed abnormally; nothing to wake
			}
			runtime.Gosched()
		}
		c.rt.shared.Push(u)
	}()
}

// Send delivers v, suspending the calling goroutine while the buffer is
// full. Must be called from inside a goroutine's Context.
func (ctx *Context) Send(c *Chan, v uint64) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			panic("gothreads: send on closed Chan")
		}
		if len(c.buf) < c.cap {
			c.buf = append(c.buf, v)
			// Wake one receiver, if any.
			if n := len(c.recvWaiters); n > 0 {
				w := c.recvWaiters[0]
				c.recvWaiters = c.recvWaiters[1:]
				c.mu.Unlock()
				c.wake(w)
			} else {
				c.mu.Unlock()
			}
			return
		}
		// Full: park.
		c.sendWaiters = append(c.sendWaiters, ctx.self)
		c.mu.Unlock()
		ctx.self.Suspend()
	}
}

// Recv receives a value, suspending while the channel is empty. The
// second result is false if the channel is closed and drained.
func (ctx *Context) Recv(c *Chan) (uint64, bool) {
	for {
		c.mu.Lock()
		if len(c.buf) > 0 {
			v := c.buf[0]
			c.buf = c.buf[1:]
			if n := len(c.sendWaiters); n > 0 {
				w := c.sendWaiters[0]
				c.sendWaiters = c.sendWaiters[1:]
				c.mu.Unlock()
				c.wake(w)
			} else {
				c.mu.Unlock()
			}
			return v, true
		}
		if c.closed {
			c.mu.Unlock()
			return 0, false
		}
		c.recvWaiters = append(c.recvWaiters, ctx.self)
		c.mu.Unlock()
		ctx.self.Suspend()
	}
}

// Close closes the channel, waking all parked receivers; further sends
// panic, further receives drain then report closed. Callable from any
// goroutine (including outside the model).
func (c *Chan) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		panic("gothreads: close of closed Chan")
	}
	c.closed = true
	waiters := c.recvWaiters
	c.recvWaiters = nil
	c.mu.Unlock()
	for _, w := range waiters {
		c.wake(w)
	}
}

// Len reports the buffered element count.
func (c *Chan) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}
