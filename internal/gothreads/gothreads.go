// Package gothreads models the Go runtime as the paper describes it
// (§III-F): a fixed set of threads all serving one global shared run
// queue of goroutines, joined through channel communication, with no
// yield operation exposed to the programmer (Table I).
//
// The model is implemented with the same substrate as the other runtimes
// rather than with native goroutines so its defining costs are measurable
// on equal footing: every creation and every dispatch targets the single
// shared queue ("this global, unique queue needs a synchronization
// mechanism that may impact performance when an elevated number of
// threads are used"), while joins use Go's strength — the out-of-order
// channel, which Figure 3 shows to be among the fastest join mechanisms.
// The shared queue is now the lock-free MPMC FIFO; the synchronization
// cost the paper predicts shows up as CAS failures on the shared head
// (QueueStats().Contended) instead of mutex convoys, and still grows with
// the thread count. A separate ablation benchmark
// (BenchmarkAblationRawGoroutines) compares this model against the real
// Go scheduler.
package gothreads

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/queue"
	"repro/internal/ult"
)

// Runtime is an initialized Go-model instance.
type Runtime struct {
	threads  []*thread
	shared   *queue.Shared
	done     chan uint64 // out-of-order completion channel
	shutdown atomic.Bool
	wg       sync.WaitGroup
	finished atomic.Bool
}

// thread is one scheduler thread serving the global queue.
type thread struct {
	rt   *Runtime
	exec *ult.Executor
}

// G is a handle on a goroutine in the model.
type G struct {
	u  *ult.ULT
	id uint64
}

// Done reports whether the goroutine completed.
func (g *G) Done() bool { return g.u.Done() }

// DoneChan returns the goroutine's completion channel (closed when the
// body returns), mirroring the per-join channel idiom.
func (g *G) DoneChan() <-chan struct{} { return g.u.DoneChan() }

// Context is passed to goroutine bodies. Deliberately minimal: the model
// exposes no yield (Table I row "Yield": absent for Go), only the ability
// to spawn further goroutines and to block on channels.
type Context struct {
	rt   *Runtime
	self *ult.ULT
}

// Init starts nthreads scheduler threads sharing one global queue
// (GOMAXPROCS=nthreads in the paper's runs). It panics if nthreads < 1.
func Init(nthreads int) *Runtime {
	if nthreads < 1 {
		panic(fmt.Sprintf("gothreads: nthreads = %d, need >= 1", nthreads))
	}
	rt := &Runtime{
		shared: queue.NewShared(256),
		done:   make(chan uint64, 1024),
	}
	for i := 0; i < nthreads; i++ {
		th := &thread{rt: rt, exec: ult.NewExecutor(i)}
		rt.threads = append(rt.threads, th)
		rt.wg.Add(1)
		go th.loop()
	}
	return rt
}

// NumThreads reports the scheduler thread count.
func (rt *Runtime) NumThreads() int { return len(rt.threads) }

// QueueStats exposes the global queue's counters; its Contended count is
// the paper's predicted bottleneck.
func (rt *Runtime) QueueStats() *queue.Stats { return rt.shared.Stats() }

// Go spawns a goroutine: the body is wrapped in a ULT and pushed to the
// single global queue ("go function" in Table II).
func (rt *Runtime) Go(fn func(*Context)) *G {
	g := &G{}
	g.u = ult.New(func(self *ult.ULT) {
		fn(&Context{rt: rt, self: self})
	})
	g.id = g.u.ID()
	ult.MarkReady(g.u)
	rt.shared.Push(g.u)
	return g
}

// GoNotify spawns a goroutine whose completion is additionally announced
// on the runtime's shared completion channel — the out-of-order channel
// join of §III-F ("channel" in Table II): the master performs N receives
// to join N goroutines, in whatever order they finish.
func (rt *Runtime) GoNotify(fn func(*Context)) *G {
	g := &G{}
	g.u = ult.New(func(self *ult.ULT) {
		// Deferred so a panicking body still notifies its joiners.
		defer func() { rt.done <- g.id }()
		fn(&Context{rt: rt, self: self})
	})
	g.id = g.u.ID()
	ult.MarkReady(g.u)
	rt.shared.Push(g.u)
	return g
}

// Recv receives one completion notification, blocking until some
// goroutine spawned with GoNotify finishes.
func (rt *Runtime) Recv() uint64 { return <-rt.done }

// JoinAll receives n completion notifications — the idiomatic Go join
// the paper credits with "the most efficient" join mechanism.
func (rt *Runtime) JoinAll(n int) {
	for i := 0; i < n; i++ {
		<-rt.done
	}
}

// Join blocks on a single goroutine's completion channel.
func (rt *Runtime) Join(g *G) { <-g.u.DoneChan() }

// Finalize stops the scheduler threads. Outstanding goroutines must have
// been joined first.
func (rt *Runtime) Finalize() {
	if !rt.finished.CompareAndSwap(false, true) {
		return
	}
	rt.shutdown.Store(true)
	rt.wg.Wait()
}

// loop is one scheduler thread: pop the global queue, run, repeat. A
// yielded unit goes back to the global queue (and pays the shared-head
// synchronization again).
func (t *thread) loop() {
	defer t.rt.wg.Done()
	for {
		u := t.rt.shared.Pop()
		if u == nil {
			if t.rt.shutdown.Load() {
				return
			}
			t.exec.NoteIdle()
			continue
		}
		g, ok := u.(*ult.ULT)
		if !ok {
			panic("gothreads: only goroutine units exist in this model")
		}
		if res := t.exec.Dispatch(g); res == ult.DispatchYielded {
			t.rt.shared.Push(g)
		}
	}
}

// --- Context ---

// Gosched yields the running goroutine back to the global queue — the
// analogue of runtime.Gosched(). It is deliberately not named Yield: the
// modeled programming surface exposes no yield operation (Table I), but
// the real Go runtime does offer this scheduler hint, and the unified
// layer's cooperative waits (scheduler-aware mutexes, barriers) need it
// so a spinning work unit releases its scheduler thread to run others.
func (c *Context) Gosched() { c.self.Yield() }

// ThreadID reports the rank of the scheduler thread currently running
// the goroutine. With the single global queue this says nothing about
// where the goroutine will resume after blocking — there is no placement
// in the Go model — but it lets the unified layer answer ExecutorID.
func (c *Context) ThreadID() int { return c.self.Owner().ID() }

// Go spawns a goroutine from inside a goroutine.
func (c *Context) Go(fn func(*Context)) *G { return c.rt.Go(fn) }

// GoNotify spawns a notifying goroutine from inside a goroutine.
func (c *Context) GoNotify(fn func(*Context)) *G { return c.rt.GoNotify(fn) }

// Join blocks the calling goroutine on the target's completion channel.
// As in the real Go runtime, a channel wait parks the goroutine and
// releases the scheduler thread to run other work: the joiner suspends
// and a watcher re-enqueues it on the global queue when the target's
// channel closes.
func (c *Context) Join(g *G) {
	if g.u.Done() {
		return
	}
	self := c.self
	go func() {
		<-g.u.DoneChan()
		// The joiner is about to suspend (or already has); spin until
		// the Blocked→Ready transition lands, then requeue it. The
		// Done escape covers a joiner that completed abnormally
		// (contained panic) without ever suspending.
		for !self.Resume() {
			if self.Done() {
				return
			}
			runtime.Gosched()
		}
		c.rt.shared.Push(self)
	}()
	self.Suspend()
}
