// Package gothreads models the Go runtime as the paper describes it
// (§III-F): a fixed set of threads all serving one global shared run
// queue of goroutines, joined through channel communication, with no
// yield operation exposed to the programmer (Table I).
//
// The model is implemented with the same substrate as the other runtimes
// rather than with native goroutines so its defining costs are measurable
// on equal footing: every creation and every dispatch targets the single
// shared queue ("this global, unique queue needs a synchronization
// mechanism that may impact performance when an elevated number of
// threads are used"), while joins use Go's strength — the out-of-order
// channel, which Figure 3 shows to be among the fastest join mechanisms.
// The shared queue is now the lock-free MPMC FIFO; the synchronization
// cost the paper predicts shows up as CAS failures on the shared head
// (QueueStats().Contended) instead of mutex convoys, and still grows with
// the thread count. A separate ablation benchmark
// (BenchmarkAblationRawGoroutines) compares this model against the real
// Go scheduler.
package gothreads

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/queue"
	"repro/internal/trace"
	"repro/internal/ult"
)

// Runtime is an initialized Go-model instance.
type Runtime struct {
	threads  []*thread
	shared   *queue.Shared
	done     chan uint64 // out-of-order completion channel
	shutdown atomic.Bool
	wg       sync.WaitGroup
	finished atomic.Bool
}

// thread is one scheduler thread serving the global queue.
type thread struct {
	rt   *Runtime
	exec *ult.Executor
}

// G is a handle on a goroutine in the model. It carries the body and the
// per-run context so spawning needs no per-create closure (the handle is
// the ult.NewWith argument), plus the descriptor generation so Done stays
// answerable after the join released the descriptor to the reuse pool.
//
// Join discipline: whichever joiner wins the handle's claim owns the
// descriptor — it may block on its channel or park in its waiter slot,
// and it frees the descriptor once synchronized (its pending free is
// what keeps the descriptor out of the reuse pool meanwhile). Every
// other joiner polls the generation-counted Done, which touches nothing
// recyclable, so concurrent joins of one handle are safe. Notifying
// goroutines (GoNotify) are joined through the completion channel; their
// completion hook takes the claim and frees, unless a joiner already
// holds it.
type G struct {
	u      *ult.ULT
	id     uint64
	gen    uint64
	rt     *Runtime
	fn     func(*Context)
	notify bool
	// claim elects the one joiner (or the self-free hook) allowed to
	// touch the descriptor and obliged to free it; freed records that
	// the free happened.
	claim    atomic.Bool
	freed    atomic.Bool
	selfFree ult.DoneWaiter
	ctx      Context
}

// gBody is the closure-free goroutine body.
func gBody(self *ult.ULT, arg any) {
	g := arg.(*G)
	if g.notify {
		// Deferred so a panicking body still notifies its joiners.
		defer func() { g.rt.done <- g.id }()
	}
	g.ctx = Context{rt: g.rt, self: self}
	g.fn(&g.ctx)
}

// free releases the descriptor. Only the claim winner calls it, after
// observing completion. The body closure is dropped too: handles may be
// retained after the join (for Done/DoneChan), and must not pin what the
// body captured.
func (g *G) free() {
	if g.freed.CompareAndSwap(false, true) {
		g.fn = nil
		_ = g.u.Free()
	}
}

// Done reports whether the goroutine completed. It reads the
// generation-counted completion word, so the answer stays correct after
// the descriptor was freed and recycled.
func (g *G) Done() bool { return g.freed.Load() || g.u.DoneAt(g.gen) }

// DoneChan returns the goroutine's completion channel (closed when the
// body returns), mirroring the per-join channel idiom. After the handle
// was joined (and the descriptor freed) it answers with the shared
// pre-closed channel.
func (g *G) DoneChan() <-chan struct{} {
	ch := g.u.DoneChan()
	// Re-check freed AFTER touching the descriptor: freed is set before
	// the descriptor can recycle, so observing it still false here
	// proves ch came from our own incarnation (whose channel closes at
	// its finish regardless of any later recycling). Observing true
	// means ch may belong to the next incarnation — discard it.
	if g.freed.Load() {
		return ult.Closed()
	}
	return ch
}

// Context is passed to goroutine bodies. Deliberately minimal: the model
// exposes no yield (Table I row "Yield": absent for Go), only the ability
// to spawn further goroutines and to block on channels.
type Context struct {
	rt   *Runtime
	self *ult.ULT
}

// Init starts nthreads scheduler threads sharing one global queue
// (GOMAXPROCS=nthreads in the paper's runs). It panics if nthreads < 1.
func Init(nthreads int) *Runtime {
	if nthreads < 1 {
		panic(fmt.Sprintf("gothreads: nthreads = %d, need >= 1", nthreads))
	}
	rt := &Runtime{
		shared: queue.NewShared(256),
		done:   make(chan uint64, 1024),
	}
	for i := 0; i < nthreads; i++ {
		th := &thread{rt: rt, exec: ult.NewExecutor(i)}
		rt.threads = append(rt.threads, th)
		rt.wg.Add(1)
		go th.loop()
	}
	return rt
}

// NumThreads reports the scheduler thread count.
func (rt *Runtime) NumThreads() int { return len(rt.threads) }

// QueueStats exposes the global queue's counters; its Contended count is
// the paper's predicted bottleneck.
func (rt *Runtime) QueueStats() *queue.Stats { return rt.shared.Stats() }

// Go spawns a goroutine: the body rides the handle into a pooled ULT
// descriptor and is pushed to the single global queue ("go function" in
// Table II). Steady-state spawning allocates only the handle.
func (rt *Runtime) Go(fn func(*Context)) *G {
	return rt.spawn(fn, false)
}

// GoNotify spawns a goroutine whose completion is additionally announced
// on the runtime's shared completion channel — the out-of-order channel
// join of §III-F ("channel" in Table II): the master performs N receives
// to join N goroutines, in whatever order they finish.
func (rt *Runtime) GoNotify(fn func(*Context)) *G {
	return rt.spawn(fn, true)
}

func (rt *Runtime) spawn(fn func(*Context), notify bool) *G {
	g := &G{rt: rt, fn: fn, notify: notify}
	g.u = ult.NewWith(gBody, g)
	g.id = g.u.ID()
	g.gen = g.u.Gen()
	if notify {
		// Channel-joined goroutines have no handle join to free them:
		// the completion hook takes the claim and recycles the
		// descriptor — unless a handle joiner beat it to the claim, in
		// which case that joiner frees. (The hook occupying the park
		// slot also means notify goroutines are park-joined never;
		// handle joins on them fall back to the watcher.)
		g.selfFree.Fn = func(*ult.Executor) {
			if g.claim.CompareAndSwap(false, true) {
				g.free()
			}
		}
		g.u.SetWaiter(&g.selfFree)
	}
	ult.MarkReady(g.u)
	rt.shared.Push(g.u)
	return g
}

// GoBulk spawns one goroutine per body with a single multi-ticket
// insertion into the global queue: the shared head/tail synchronization
// the paper flags as the model's bottleneck is paid once per batch
// instead of once per goroutine.
func (rt *Runtime) GoBulk(fns []func(*Context)) []*G {
	gs := make([]*G, len(fns))
	units := make([]ult.Unit, len(fns))
	for i, fn := range fns {
		g := &G{rt: rt, fn: fn}
		g.u = ult.NewWith(gBody, g)
		g.id = g.u.ID()
		g.gen = g.u.Gen()
		ult.MarkReady(g.u)
		gs[i] = g
		units[i] = g.u
	}
	rt.shared.PushBatch(units)
	return gs
}

// Recv receives one completion notification, blocking until some
// goroutine spawned with GoNotify finishes.
func (rt *Runtime) Recv() uint64 { return <-rt.done }

// JoinAll receives n completion notifications — the idiomatic Go join
// the paper credits with "the most efficient" join mechanism.
func (rt *Runtime) JoinAll(n int) {
	for i := 0; i < n; i++ {
		<-rt.done
	}
}

// Join blocks until the goroutine completes and releases the descriptor
// (the goroutine's resources are gone once the joiner has synchronized,
// as with the real runtime). The claim winner blocks on the completion
// channel; a joiner that lost the claim — someone else owns the
// descriptor — blocks on the freed-guarded DoneChan snapshot, which is
// either this incarnation's channel (closed at its finish no matter who
// frees afterwards) or the shared pre-closed channel.
func (rt *Runtime) Join(g *G) {
	if g.claim.CompareAndSwap(false, true) {
		<-g.u.DoneChan()
		g.free()
		return
	}
	<-g.DoneChan()
}

// Finalize stops the scheduler threads. Outstanding goroutines must have
// been joined first.
func (rt *Runtime) Finalize() {
	if !rt.finished.CompareAndSwap(false, true) {
		return
	}
	rt.shutdown.Store(true)
	rt.wg.Wait()
}

// loop is one scheduler thread: pop the global queue, run, repeat. A
// yielded unit goes back to the global queue (and pays the shared-head
// synchronization again).
func (t *thread) loop() {
	defer t.rt.wg.Done()
	bat := trace.Default().Ring(fmt.Sprintf("go/m%d", t.exec.ID()), t.exec.ID()).Batcher()
	defer bat.Close()
	for {
		u := t.rt.shared.Pop()
		if u == nil {
			if t.rt.shutdown.Load() {
				return
			}
			bat.Idle()
			t.exec.NoteIdle()
			continue
		}
		g, ok := u.(*ult.ULT)
		if !ok {
			panic("gothreads: only goroutine units exist in this model")
		}
		bat.Begin()
		res := t.exec.Dispatch(g)
		bat.Note(trace.KindDispatch, 1)
		if res == ult.DispatchYielded {
			t.rt.shared.Push(g)
		}
	}
}

// SchedStats snapshots the global queue's counters.
func (rt *Runtime) SchedStats() queue.Counts { return rt.shared.Stats().Snapshot() }

// --- Context ---

// Gosched yields the running goroutine back to the global queue — the
// analogue of runtime.Gosched(). It is deliberately not named Yield: the
// modeled programming surface exposes no yield operation (Table I), but
// the real Go runtime does offer this scheduler hint, and the unified
// layer's cooperative waits (scheduler-aware mutexes, barriers) need it
// so a spinning work unit releases its scheduler thread to run others.
func (c *Context) Gosched() { c.self.Yield() }

// ThreadID reports the rank of the scheduler thread currently running
// the goroutine. With the single global queue this says nothing about
// where the goroutine will resume after blocking — there is no placement
// in the Go model — but it lets the unified layer answer ExecutorID.
func (c *Context) ThreadID() int { return c.self.Owner().ID() }

// IOPark builds the park/unpark pair the aio reactor blocks this
// goroutine with: park suspends it, and unpark — callable from any
// goroutine, exactly like Join's watcher fallback — resumes it into the
// global queue, from which any scheduler thread may pick it up (the
// model has no placement to preserve).
func (c *Context) IOPark() (park func(), unpark func()) {
	self, rt := c.self, c.rt
	return func() { self.Suspend() }, func() {
		ult.ResumeAndRequeue(self, func(j *ult.ULT) { rt.shared.Push(j) })
	}
}

// Go spawns a goroutine from inside a goroutine.
func (c *Context) Go(fn func(*Context)) *G { return c.rt.Go(fn) }

// GoNotify spawns a notifying goroutine from inside a goroutine.
func (c *Context) GoNotify(fn func(*Context)) *G { return c.rt.GoNotify(fn) }

// Join blocks the calling goroutine until the target completes. As in
// the real Go runtime, the wait parks the goroutine and releases the
// scheduler thread to run other work: the claim-winning joiner suspends
// in the target's single-waiter park slot and the finishing unit
// re-enqueues it on the global queue directly, then the joiner frees the
// descriptor. When the slot is held by the target's self-free hook (a
// notify goroutine) a watcher goroutine on the completion channel stands
// in — safe, because the claim winner's pending free keeps the
// descriptor alive. A joiner that lost the claim polls the recycle-safe
// Done cooperatively.
func (c *Context) Join(g *G) {
	if !g.claim.CompareAndSwap(false, true) {
		for !g.Done() {
			c.Gosched()
		}
		return
	}
	if g.u.Done() {
		g.free()
		return
	}
	self := c.self
	rt := c.rt
	if ult.ParkJoinStep(self, g.u, func(j *ult.ULT, _ *ult.Executor) { rt.shared.Push(j) }) {
		g.free()
		return
	}
	if g.u.Done() {
		g.free()
		return
	}
	go func() {
		<-g.u.DoneChan()
		// The joiner is about to suspend (or already has); spin until
		// the Blocked→Ready transition lands, then requeue it. The
		// Done escape covers a joiner that completed abnormally
		// (contained panic) without ever suspending.
		for !self.Resume() {
			if self.Done() {
				return
			}
			runtime.Gosched()
		}
		rt.shared.Push(self)
	}()
	self.Suspend()
	g.free()
}
