package gothreads

import (
	"sync/atomic"
	"testing"
)

func TestChanSendRecvFIFO(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	c := rt.NewChan(4)
	var sum atomic.Int64
	rt.GoNotify(func(ctx *Context) {
		for i := uint64(1); i <= 100; i++ {
			ctx.Send(c, i)
		}
		c.Close()
	})
	rt.GoNotify(func(ctx *Context) {
		for {
			v, ok := ctx.Recv(c)
			if !ok {
				return
			}
			sum.Add(int64(v))
		}
	})
	rt.JoinAll(2)
	if got := sum.Load(); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
}

func TestChanBlocksProducerOnSingleThread(t *testing.T) {
	// One scheduler thread: the producer must suspend when the buffer
	// fills, or the consumer could never run.
	rt := Init(1)
	defer rt.Finalize()
	c := rt.NewChan(2)
	const n = 50
	var received atomic.Int64
	rt.GoNotify(func(ctx *Context) {
		for i := uint64(0); i < n; i++ {
			ctx.Send(c, i)
		}
		c.Close()
	})
	rt.GoNotify(func(ctx *Context) {
		for {
			if _, ok := ctx.Recv(c); !ok {
				return
			}
			received.Add(1)
		}
	})
	rt.JoinAll(2)
	if received.Load() != n {
		t.Fatalf("received = %d, want %d", received.Load(), n)
	}
}

func TestChanManyProducersOneConsumer(t *testing.T) {
	rt := Init(4)
	defer rt.Finalize()
	c := rt.NewChan(8)
	const producers, per = 4, 100
	for p := 0; p < producers; p++ {
		rt.GoNotify(func(ctx *Context) {
			for i := 0; i < per; i++ {
				ctx.Send(c, 1)
			}
		})
	}
	var got atomic.Int64
	rt.GoNotify(func(ctx *Context) {
		for got.Load() < producers*per {
			v, ok := ctx.Recv(c)
			if !ok {
				return
			}
			got.Add(int64(v))
		}
	})
	rt.JoinAll(producers + 1)
	if got.Load() != producers*per {
		t.Fatalf("received %d, want %d", got.Load(), producers*per)
	}
}

func TestChanCloseDrains(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	c := rt.NewChan(4)
	rt.GoNotify(func(ctx *Context) {
		ctx.Send(c, 7)
		ctx.Send(c, 8)
		c.Close()
	})
	var vals []uint64
	rt.GoNotify(func(ctx *Context) {
		for {
			v, ok := ctx.Recv(c)
			if !ok {
				return
			}
			vals = append(vals, v)
		}
	})
	rt.JoinAll(2)
	if len(vals) != 2 || vals[0] != 7 || vals[1] != 8 {
		t.Fatalf("vals = %v, want [7 8]", vals)
	}
}

func TestChanCloseWakesParkedReceiver(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	c := rt.NewChan(1)
	var sawClosed atomic.Bool
	rt.GoNotify(func(ctx *Context) {
		if _, ok := ctx.Recv(c); !ok {
			sawClosed.Store(true)
		}
	})
	// Close from outside the model once the receiver had a chance to
	// park; Close must wake it either way.
	c.Close()
	rt.JoinAll(1)
	if !sawClosed.Load() {
		t.Fatal("receiver did not observe close")
	}
}

func TestChanDoubleClosePanics(t *testing.T) {
	rt := Init(1)
	defer rt.Finalize()
	c := rt.NewChan(1)
	c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("double close did not panic")
		}
	}()
	c.Close()
}

func TestChanLen(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	c := rt.NewChan(4)
	if c.Len() != 0 {
		t.Fatalf("fresh Len = %d", c.Len())
	}
	rt.GoNotify(func(ctx *Context) { ctx.Send(c, 1); ctx.Send(c, 2) })
	rt.JoinAll(1)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestChanMinimumCapacity(t *testing.T) {
	rt := Init(1)
	defer rt.Finalize()
	c := rt.NewChan(0)
	if c.cap != 1 {
		t.Fatalf("capacity floor = %d, want 1", c.cap)
	}
}
