package gothreads

import (
	"sync/atomic"
	"testing"
)

func TestInitPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Init(0) did not panic")
		}
	}()
	Init(0)
}

func TestFinalizeIdempotent(t *testing.T) {
	rt := Init(1)
	rt.Finalize()
	rt.Finalize()
}

func TestGoAndJoin(t *testing.T) {
	rt := Init(4)
	defer rt.Finalize()
	const n = 100
	var ran atomic.Int64
	gs := make([]*G, n)
	for i := range gs {
		gs[i] = rt.Go(func(c *Context) { ran.Add(1) })
	}
	for _, g := range gs {
		rt.Join(g)
	}
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
}

func TestGoNotifyJoinAllOutOfOrder(t *testing.T) {
	rt := Init(4)
	defer rt.Finalize()
	const n = 200
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		rt.GoNotify(func(c *Context) { ran.Add(1) })
	}
	rt.JoinAll(n) // receives completions in whatever order they finish
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
}

func TestRecvReturnsSpawnedIDs(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	g1 := rt.GoNotify(func(c *Context) {})
	g2 := rt.GoNotify(func(c *Context) {})
	ids := map[uint64]bool{g1.id: true, g2.id: true}
	for i := 0; i < 2; i++ {
		id := rt.Recv()
		if !ids[id] {
			t.Fatalf("Recv returned unknown id %d", id)
		}
		delete(ids, id)
	}
}

func TestSingleThreadProcessesAll(t *testing.T) {
	rt := Init(1)
	defer rt.Finalize()
	const n = 50
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		rt.GoNotify(func(c *Context) { ran.Add(1) })
	}
	rt.JoinAll(n)
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
}

func TestNestedSpawn(t *testing.T) {
	rt := Init(4)
	defer rt.Finalize()
	var leaves atomic.Int64
	const parents, children = 10, 5
	for i := 0; i < parents; i++ {
		rt.GoNotify(func(c *Context) {
			kids := make([]*G, children)
			for j := range kids {
				kids[j] = c.Go(func(*Context) { leaves.Add(1) })
			}
			for _, k := range kids {
				c.Join(k)
			}
		})
	}
	rt.JoinAll(parents)
	if got := leaves.Load(); got != parents*children {
		t.Fatalf("leaves = %d, want %d", got, parents*children)
	}
}

func TestContextJoinReleasesThread(t *testing.T) {
	// One scheduler thread: a parent joining its child can only work if
	// the join releases the thread (suspend), since the child needs it.
	rt := Init(1)
	defer rt.Finalize()
	var childRan atomic.Bool
	g := rt.GoNotify(func(c *Context) {
		child := c.Go(func(*Context) { childRan.Store(true) })
		c.Join(child)
		if !childRan.Load() {
			t.Error("Join returned before child completed")
		}
	})
	rt.JoinAll(1)
	_ = g
	if !childRan.Load() {
		t.Fatal("child never ran")
	}
}

func TestJoinOnDoneGoroutineReturnsImmediately(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	g := rt.Go(func(c *Context) {})
	rt.Join(g)
	// Joining again from inside another goroutine: target already done.
	h := rt.GoNotify(func(c *Context) { c.Join(g) })
	rt.JoinAll(1)
	_ = h
}

func TestGlobalQueueSeesAllPushes(t *testing.T) {
	rt := Init(3)
	defer rt.Finalize()
	const n = 100
	for i := 0; i < n; i++ {
		rt.GoNotify(func(c *Context) {})
	}
	rt.JoinAll(n)
	if got := rt.QueueStats().Pushes.Load(); got < n {
		t.Fatalf("global queue pushes = %d, want >= %d", got, n)
	}
	if rt.NumThreads() != 3 {
		t.Fatalf("NumThreads = %d, want 3", rt.NumThreads())
	}
}

func TestDoneChanCloses(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	g := rt.Go(func(c *Context) {})
	<-g.DoneChan()
	if !g.Done() {
		t.Fatal("Done = false after DoneChan closed")
	}
}
