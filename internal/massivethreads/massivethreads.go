// Package massivethreads emulates the MassiveThreads programming model
// (§III-C): Workers (one per hardware resource), a creation policy that is
// either work-first (the default: the creator immediately runs the new
// ULT and its own continuation is pushed to the ready deque) or help-first
// (the new ULT is pushed and the creator continues), and random work
// stealing from per-worker ready deques for load balance.
//
// The C library protects its deques with mutexes (§III-C); this emulation
// runs them on the lock-free Chase–Lev deque so the create/steal hot path
// is contention-free, with queue.MutexDeque kept as the measured baseline
// (BenchmarkQueueOps, BenchmarkAblationDequeLocking). The deque's owner
// discipline holds because a worker's bottom-end operations always come
// from the holder of its control token: the scheduling loop and the ULT
// it is currently running alternate, never overlap.
//
// The caller of Init becomes the primary ULT of worker 0, which is what
// produces the distinctive MassiveThreads(W) curve of Figure 2: under
// work-first, creating the first work unit moves the *main flow* into the
// ready deque, where any worker may steal it — so successive creations can
// be executed by different workers, adding a non-negligible overhead when
// the number of created work units is small (§VI).
package massivethreads

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/queue"
	"repro/internal/ult"
)

// Policy selects the creation discipline (§VIII-B2).
type Policy int

const (
	// WorkFirst runs a newly created ULT immediately, pushing the
	// creator's continuation to the ready deque (myth_create default).
	WorkFirst Policy = iota
	// HelpFirst pushes the new ULT to the ready deque and lets the
	// creator continue.
	HelpFirst
)

// String names the policy as the paper's figures do.
func (p Policy) String() string {
	if p == HelpFirst {
		return "help-first"
	}
	return "work-first"
}

// Runtime is an initialized MassiveThreads instance.
type Runtime struct {
	policy   Policy
	workers  []*Worker
	primary  *ult.ULT
	shutdown atomic.Bool
	wg       sync.WaitGroup
	finished atomic.Bool
	steals   atomic.Uint64
}

// Worker is one hardware-resource executor with a private ready deque.
type Worker struct {
	rt   *Runtime
	exec *ult.Executor
	dq   *queue.Deque
	rng  *rand.Rand
}

// ID returns the worker's rank.
func (w *Worker) ID() int { return w.exec.ID() }

// Stats exposes the worker's executor counters.
func (w *Worker) Stats() *ult.ExecStats { return w.exec.Stats() }

// Thread is a handle on a MassiveThreads ULT.
type Thread struct {
	u *ult.ULT
}

// Done reports whether the ULT completed.
func (th *Thread) Done() bool { return th.u.Done() }

// Context is passed to ULT bodies.
type Context struct {
	rt   *Runtime
	self *ult.ULT
}

// Init starts nworkers workers with the given creation policy and adopts
// the caller as the primary ULT of worker 0 (myth_init). It panics if
// nworkers < 1.
func Init(nworkers int, policy Policy) *Runtime {
	if nworkers < 1 {
		panic(fmt.Sprintf("massivethreads: nworkers = %d, need >= 1", nworkers))
	}
	rt := &Runtime{policy: policy}
	rt.workers = make([]*Worker, nworkers)
	for i := range rt.workers {
		rt.workers[i] = &Worker{
			rt:   rt,
			exec: ult.NewExecutor(i),
			dq:   queue.NewDeque(64),
			rng:  rand.New(rand.NewSource(int64(i)*2654435761 + 1)),
		}
	}
	rt.primary = ult.Adopt(rt.workers[0].exec)
	for i, w := range rt.workers {
		rt.wg.Add(1)
		go w.loop(i == 0)
	}
	return rt
}

// NumWorkers reports the worker count.
func (rt *Runtime) NumWorkers() int { return len(rt.workers) }

// Policy reports the creation policy the runtime was initialized with.
func (rt *Runtime) Policy() Policy { return rt.policy }

// Steals reports the total number of successful work steals.
func (rt *Runtime) Steals() uint64 { return rt.steals.Load() }

// Create creates a ULT from the Init goroutine (myth_create from main).
// Under work-first the main flow is pushed to worker 0's deque and the
// new ULT runs immediately in its place; under help-first the new ULT is
// enqueued and the caller continues.
func (rt *Runtime) Create(fn func(*Context)) *Thread {
	return rt.createFrom(rt.primary, fn)
}

// createFrom implements both creation policies for any creating ULT.
func (rt *Runtime) createFrom(creator *ult.ULT, fn func(*Context)) *Thread {
	th := &Thread{}
	th.u = ult.New(func(self *ult.ULT) {
		fn(&Context{rt: rt, self: self})
	})
	ult.MarkReady(th.u)
	if rt.policy == WorkFirst && creator != nil {
		// Hand control straight to the new ULT; the executor requeues
		// the creator's continuation into the local deque, where
		// thieves may steal it — including the main flow itself.
		creator.YieldTo(th.u)
		return th
	}
	// Help-first: enqueue on the creating worker's deque.
	w := rt.workerOf(creator)
	w.dq.PushBottom(th.u)
	return th
}

// workerOf maps a running ULT to the worker whose deque receives its
// spawns; the Init goroutine maps to whichever worker last dispatched it.
func (rt *Runtime) workerOf(creator *ult.ULT) *Worker {
	if creator == nil {
		return rt.workers[0]
	}
	// The creator is running, so its executor is one of our workers.
	owner := creator.Owner()
	for _, w := range rt.workers {
		if w.exec == owner {
			return w
		}
	}
	return rt.workers[0]
}

// Join waits for the target from the Init goroutine (myth_join). The
// paper observes that MassiveThreads joins are the most expensive of the
// studied libraries: "each time a thread is joined, a query of the current
// work unit queue size and several scheduling procedures occur" (§VI).
// Yielding between polls reproduces exactly that: every poll re-enters the
// scheduler, which inspects queue sizes and may steal.
func (rt *Runtime) Join(th *Thread) {
	for !th.u.Done() {
		rt.primary.Yield()
	}
}

// Yield yields the main flow to the scheduler from the Init goroutine
// (myth_yield from main).
func (rt *Runtime) Yield() { rt.primary.Yield() }

// Finalize stops the workers (myth_fini). Outstanding ULTs must have been
// joined first.
func (rt *Runtime) Finalize() {
	if !rt.finished.CompareAndSwap(false, true) {
		return
	}
	rt.shutdown.Store(true)
	rt.primary.Detach()
	rt.wg.Wait()
}

// loop is one worker's scheduling cycle: serve the local deque in arrival
// order, then try to steal the oldest unit from a random victim (a single
// CAS per attempt), then idle.
//
// Service is FIFO rather than owner-LIFO: a ULT that polls a join by
// yielding re-enters the deque behind its target, so the target always
// runs first and joins cannot livelock. (The C library achieves the same
// by parking joiners inside the scheduler; recursion locality still comes
// from the work-first hand-off, which bypasses the deque entirely.)
func (w *Worker) loop(adopted bool) {
	defer w.rt.wg.Done()
	requeue := func(t *ult.ULT) { w.dq.PushBottom(t) }
	if adopted {
		if t, res := w.exec.AwaitHandback(); res == ult.DispatchYielded {
			requeue(t)
		}
	}
	for {
		if res, h, ok := w.exec.DispatchHint(); ok {
			// Work-first hand-off: the new ULT runs here directly.
			if res == ult.DispatchYielded {
				requeue(h)
			}
			continue
		}
		u := w.dq.PopFront()
		if u == nil {
			u = w.steal()
		}
		if u == nil {
			if w.rt.shutdown.Load() {
				return
			}
			w.exec.NoteIdle()
			continue
		}
		w.runUnit(u)
	}
}

// runUnit dispatches a unit; yielded ULTs return to the local deque. The
// primary's continuation is a unit like any other, so the main flow can
// resume on whichever worker pops or steals it (§VI).
func (w *Worker) runUnit(u ult.Unit) {
	t, ok := u.(*ult.ULT)
	if !ok {
		panic("massivethreads: only ULT work units exist in this model")
	}
	if res := w.exec.Dispatch(t); res == ult.DispatchYielded {
		w.dq.PushBottom(t)
	}
}

// steal takes the oldest unit from a random victim's deque. A nil from
// StealTop means empty or a lost CAS race; either way the next victim is
// tried, and the loop's idle path retries the whole cycle.
func (w *Worker) steal() ult.Unit {
	n := len(w.rt.workers)
	if n == 1 {
		return nil
	}
	for attempt := 0; attempt < n-1; attempt++ {
		victim := w.rt.workers[w.rng.Intn(n)]
		if victim == w {
			continue
		}
		if u := victim.dq.StealTop(); u != nil {
			w.rt.steals.Add(1)
			w.exec.Stats().Steals.Add(1)
			return u
		}
	}
	return nil
}

// --- Context: operations valid inside a running ULT ---

// Create spawns a child ULT under the runtime's policy (myth_create).
func (c *Context) Create(fn func(*Context)) *Thread {
	return c.rt.createFrom(c.self, fn)
}

// Join waits for the target ULT (myth_join), yielding between polls.
func (c *Context) Join(th *Thread) {
	for !th.u.Done() {
		c.self.Yield()
	}
}

// Yield re-enters the scheduler (myth_yield).
func (c *Context) Yield() { c.self.Yield() }

// WorkerID reports the rank of the worker currently running the ULT.
func (c *Context) WorkerID() int { return c.self.Owner().ID() }
