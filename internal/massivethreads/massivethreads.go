// Package massivethreads emulates the MassiveThreads programming model
// (§III-C): Workers (one per hardware resource), a creation policy that is
// either work-first (the default: the creator immediately runs the new
// ULT and its own continuation is pushed to the ready deque) or help-first
// (the new ULT is pushed and the creator continues), and random work
// stealing from per-worker ready deques for load balance.
//
// The C library protects its deques with mutexes (§III-C); this emulation
// runs them on the lock-free Chase–Lev deque so the create/steal hot path
// is contention-free, with queue.MutexDeque kept as the measured baseline
// (BenchmarkQueueOps, BenchmarkAblationDequeLocking). The deque's owner
// discipline holds because a worker's bottom-end operations always come
// from the holder of its control token: the scheduling loop and the ULT
// it is currently running alternate, never overlap.
//
// The caller of Init becomes the primary ULT of worker 0, which is what
// produces the distinctive MassiveThreads(W) curve of Figure 2: under
// work-first, creating the first work unit moves the *main flow* into the
// ready deque, where any worker may steal it — so successive creations can
// be executed by different workers, adding a non-negligible overhead when
// the number of created work units is small (§VI).
package massivethreads

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/queue"
	"repro/internal/trace"
	"repro/internal/ult"
)

// Policy selects the creation discipline (§VIII-B2).
type Policy int

const (
	// WorkFirst runs a newly created ULT immediately, pushing the
	// creator's continuation to the ready deque (myth_create default).
	WorkFirst Policy = iota
	// HelpFirst pushes the new ULT to the ready deque and lets the
	// creator continue.
	HelpFirst
)

// String names the policy as the paper's figures do.
func (p Policy) String() string {
	if p == HelpFirst {
		return "help-first"
	}
	return "work-first"
}

// Runtime is an initialized MassiveThreads instance.
type Runtime struct {
	policy  Policy
	workers []*Worker
	primary *ult.ULT
	// pWaiter is the primary's reusable park-slot entry for main-thread
	// joins (serial, so one instance suffices allocation-free).
	pWaiter *ult.DoneWaiter
	// inject receives units resumed from outside the runtime (the aio
	// reactor). The Chase–Lev deques are owner-only at the bottom end, so
	// a foreign goroutine cannot push into them; the MPMC injection queue
	// is the one container every worker may push to and polls between its
	// own deque and stealing.
	inject   *queue.Shared
	shutdown atomic.Bool
	wg       sync.WaitGroup
	finished atomic.Bool
	steals   atomic.Uint64
}

// Worker is one hardware-resource executor with a private ready deque.
type Worker struct {
	rt   *Runtime
	exec *ult.Executor
	dq   *queue.Deque
	rng  *rand.Rand
	// tick alternates the loop's source priority between the local
	// deque and the runtime's injection queue (see loop).
	tick uint64
	// ring is the worker's flight-recorder lane, acquired by loop; bat
	// coalesces its per-unit dispatch events into per-burst intervals.
	ring *trace.Ring
	bat  *trace.Batcher
}

// ID returns the worker's rank.
func (w *Worker) ID() int { return w.exec.ID() }

// Stats exposes the worker's executor counters.
func (w *Worker) Stats() *ult.ExecStats { return w.exec.Stats() }

// Thread is a handle on a MassiveThreads ULT. It carries the body and
// per-run context so creation allocates only the handle (ult.NewWith),
// plus the descriptor generation so Done stays answerable after the join
// released the descriptor.
//
// Join discipline: the joiner that wins the handle's claim owns the
// descriptor — it parks in the waiter slot and frees once synchronized
// (myth_join both synchronizes and reclaims in the C library); its
// pending free keeps the descriptor out of the reuse pool meanwhile.
// Joiners that lost the claim poll the recycle-safe Done, so concurrent
// joins of one handle are safe.
type Thread struct {
	u   *ult.ULT
	rt  *Runtime
	fn  func(*Context)
	gen uint64
	// claim elects the one joiner allowed to touch the descriptor and
	// obliged to free it; freed records that the free happened.
	claim atomic.Bool
	freed atomic.Bool
	ctx   Context
}

// mtBody is the closure-free ULT body.
func mtBody(self *ult.ULT, arg any) {
	th := arg.(*Thread)
	th.ctx = Context{rt: th.rt, self: self}
	th.fn(&th.ctx)
}

// free releases the descriptor. Only the claim winner calls it, after
// observing completion. The body closure is dropped too: handles may be
// retained after the join (for Done), and must not pin what the body
// captured.
func (th *Thread) free() {
	if th.freed.CompareAndSwap(false, true) {
		th.fn = nil
		_ = th.u.Free()
	}
}

// Done reports whether the ULT completed; the generation-counted
// completion word keeps the answer correct after free-and-recycle.
func (th *Thread) Done() bool { return th.freed.Load() || th.u.DoneAt(th.gen) }

// Context is passed to ULT bodies.
type Context struct {
	rt   *Runtime
	self *ult.ULT
}

// Init starts nworkers workers with the given creation policy and adopts
// the caller as the primary ULT of worker 0 (myth_init). It panics if
// nworkers < 1.
func Init(nworkers int, policy Policy) *Runtime {
	if nworkers < 1 {
		panic(fmt.Sprintf("massivethreads: nworkers = %d, need >= 1", nworkers))
	}
	rt := &Runtime{policy: policy, inject: queue.NewShared(64)}
	rt.workers = make([]*Worker, nworkers)
	for i := range rt.workers {
		rt.workers[i] = &Worker{
			rt:   rt,
			exec: ult.NewExecutor(i),
			dq:   queue.NewDeque(64),
			rng:  rand.New(rand.NewSource(int64(i)*2654435761 + 1)),
		}
	}
	rt.primary = ult.Adopt(rt.workers[0].exec)
	rt.pWaiter = &ult.DoneWaiter{Fn: func(e *ult.Executor) {
		// The waiter runs on the finishing unit's goroutine with e's
		// control token held, so the bottom push into e's deque honors
		// the Chase–Lev owner discipline; the main flow resumes on
		// whichever worker the target finished on, as work stealing
		// already allows (§VI).
		ult.ResumeAndRequeue(rt.primary, func(j *ult.ULT) {
			rt.workers[e.ID()].dq.PushBottom(j)
		})
	}}
	for i, w := range rt.workers {
		rt.wg.Add(1)
		go w.loop(i == 0)
	}
	return rt
}

// NumWorkers reports the worker count.
func (rt *Runtime) NumWorkers() int { return len(rt.workers) }

// Policy reports the creation policy the runtime was initialized with.
func (rt *Runtime) Policy() Policy { return rt.policy }

// Steals reports the total number of successful work steals.
func (rt *Runtime) Steals() uint64 { return rt.steals.Load() }

// SchedStats sums the container counters across every worker deque and
// the shared injection queue.
func (rt *Runtime) SchedStats() queue.Counts {
	var c queue.Counts
	for _, w := range rt.workers {
		c = c.Plus(w.dq.Stats().Snapshot())
	}
	return c.Plus(rt.inject.Stats().Snapshot())
}

// Create creates a ULT from the Init goroutine (myth_create from main).
// Under work-first the main flow is pushed to worker 0's deque and the
// new ULT runs immediately in its place; under help-first the new ULT is
// enqueued and the caller continues.
func (rt *Runtime) Create(fn func(*Context)) *Thread {
	return rt.createFrom(rt.primary, fn)
}

// createFrom implements both creation policies for any creating ULT.
func (rt *Runtime) createFrom(creator *ult.ULT, fn func(*Context)) *Thread {
	th := &Thread{rt: rt, fn: fn}
	th.u = ult.NewWith(mtBody, th)
	th.gen = th.u.Gen()
	if rt.policy == WorkFirst && creator != nil {
		// Hand control straight to the new ULT; the executor requeues
		// the creator's continuation into the local deque, where
		// thieves may steal it — including the main flow itself. The
		// new unit never touches a pool before this first dispatch, so
		// the hint dispatch leaves no stale entry and the descriptor
		// stays in the reuse economy (MarkUnpooled).
		th.u.MarkUnpooled()
		ult.MarkReady(th.u)
		creator.YieldTo(th.u)
		return th
	}
	// Help-first: enqueue on the creating worker's deque.
	ult.MarkReady(th.u)
	w := rt.workerOf(creator)
	w.dq.PushBottom(th.u)
	return th
}

// CreateBulk creates one ULT per body from the Init goroutine. Under
// help-first the whole batch lands in the creating worker's deque with a
// single bottom publication (the caller holds that worker's control
// token, so the owner discipline is satisfied); work-first is inherently
// sequential — every create hands control straight to the new unit — so
// it falls back to per-unit creation.
func (rt *Runtime) CreateBulk(fns []func(*Context)) []*Thread {
	ths := make([]*Thread, len(fns))
	if rt.policy == WorkFirst {
		for i, fn := range fns {
			ths[i] = rt.createFrom(rt.primary, fn)
		}
		return ths
	}
	units := make([]ult.Unit, len(fns))
	for i, fn := range fns {
		th := &Thread{rt: rt, fn: fn}
		th.u = ult.NewWith(mtBody, th)
		th.gen = th.u.Gen()
		ult.MarkReady(th.u)
		ths[i] = th
		units[i] = th.u
	}
	rt.workerOf(rt.primary).dq.PushBottomBatch(units)
	return ths
}

// workerOf maps a running ULT to the worker whose deque receives its
// spawns; the Init goroutine maps to whichever worker last dispatched it.
func (rt *Runtime) workerOf(creator *ult.ULT) *Worker {
	if creator == nil {
		return rt.workers[0]
	}
	// The creator is running, so its executor is one of our workers.
	owner := creator.Owner()
	for _, w := range rt.workers {
		if w.exec == owner {
			return w
		}
	}
	return rt.workers[0]
}

// Join waits for the target from the Init goroutine (myth_join). The
// main flow parks in the target's single-waiter slot and is resumed by
// the finishing unit into that worker's deque — the C library likewise
// parks joiners inside the scheduler rather than spinning them. When the
// slot is taken by another joiner, Join falls back to the poll-yield loop
// whose repeated queue inspection the paper measures as MassiveThreads'
// join cost (§VI).
func (rt *Runtime) Join(th *Thread) {
	if !th.claim.CompareAndSwap(false, true) {
		// Another joiner owns (and will free) the descriptor; poll the
		// recycle-safe completion word only.
		for !th.Done() {
			rt.primary.Yield()
		}
		return
	}
	for !th.u.Done() {
		if th.u.SetWaiter(rt.pWaiter) {
			rt.primary.Suspend()
			break
		}
		rt.primary.Yield()
	}
	th.free()
}

// Yield yields the main flow to the scheduler from the Init goroutine
// (myth_yield from main).
func (rt *Runtime) Yield() { rt.primary.Yield() }

// Finalize stops the workers (myth_fini). Outstanding ULTs must have been
// joined first.
func (rt *Runtime) Finalize() {
	if !rt.finished.CompareAndSwap(false, true) {
		return
	}
	rt.shutdown.Store(true)
	rt.primary.Detach()
	rt.wg.Wait()
}

// loop is one worker's scheduling cycle: serve the local deque in arrival
// order, then try to steal the oldest unit from a random victim (a single
// CAS per attempt), then idle.
//
// Service is FIFO rather than owner-LIFO: a ULT that polls a join by
// yielding re-enters the deque behind its target, so the target always
// runs first and joins cannot livelock. (The C library achieves the same
// by parking joiners inside the scheduler; recursion locality still comes
// from the work-first hand-off, which bypasses the deque entirely.)
func (w *Worker) loop(adopted bool) {
	defer w.rt.wg.Done()
	requeue := func(t *ult.ULT) { w.dq.PushBottom(t) }
	if adopted {
		if t, res := w.exec.AwaitHandback(); res == ult.DispatchYielded {
			requeue(t)
		}
	}
	w.ring = trace.Default().Ring(
		fmt.Sprintf("massivethreads/w%d", w.exec.ID()), w.exec.ID())
	w.bat = w.ring.Batcher()
	defer w.bat.Close()
	for {
		if res, h, ok := w.exec.DispatchHint(); ok {
			// Work-first hand-off: the new ULT runs here directly.
			if res == ult.DispatchYielded {
				requeue(h)
			}
			continue
		}
		// Alternate the first source between the deque and the
		// injection queue. Deque-first-always starves injected resumes
		// when the deque never drains — a main flow yield-spinning on a
		// parked unit's result re-enters the deque every cycle, so with
		// one worker the resume sitting in inject would never run
		// (livelock, caught live by the serve I/O benchmark). Inject-
		// first-always has the mirror problem under a steady resume
		// stream. Alternating bounds either source's wait to one
		// dispatch.
		w.tick++
		var u ult.Unit
		if w.tick&1 == 0 {
			if u = w.rt.inject.Pop(); u == nil {
				u = w.dq.PopFront()
			}
		} else {
			if u = w.dq.PopFront(); u == nil {
				u = w.rt.inject.Pop()
			}
		}
		if u == nil {
			u = w.steal()
		}
		if u == nil {
			if w.rt.shutdown.Load() {
				return
			}
			w.bat.Idle()
			w.exec.NoteIdle()
			continue
		}
		w.runUnit(u)
	}
}

// runUnit dispatches a unit; yielded ULTs return to the local deque. The
// primary's continuation is a unit like any other, so the main flow can
// resume on whichever worker pops or steals it (§VI).
func (w *Worker) runUnit(u ult.Unit) {
	t, ok := u.(*ult.ULT)
	if !ok {
		panic("massivethreads: only ULT work units exist in this model")
	}
	w.bat.Begin()
	res := w.exec.Dispatch(t)
	w.bat.Note(trace.KindDispatch, 1)
	if res == ult.DispatchYielded {
		w.dq.PushBottom(t)
	}
}

// steal takes the oldest unit from a random victim's deque. A nil from
// StealTop means empty or a lost CAS race; either way the next victim is
// tried, and the loop's idle path retries the whole cycle.
func (w *Worker) steal() ult.Unit {
	n := len(w.rt.workers)
	if n == 1 {
		return nil
	}
	for attempt := 0; attempt < n-1; attempt++ {
		victim := w.rt.workers[w.rng.Intn(n)]
		if victim == w {
			continue
		}
		if u := victim.dq.StealTop(); u != nil {
			w.rt.steals.Add(1)
			w.exec.Stats().Steals.Add(1)
			w.ring.Instant(trace.KindSteal, u.ID())
			return u
		}
	}
	return nil
}

// --- Context: operations valid inside a running ULT ---

// Create spawns a child ULT under the runtime's policy (myth_create).
func (c *Context) Create(fn func(*Context)) *Thread {
	return c.rt.createFrom(c.self, fn)
}

// Join waits for the target ULT (myth_join), parking in its waiter slot;
// the finishing unit resumes the joiner into its own worker's deque
// (owner-side push — the waiter runs with that worker's control token).
// Falls back to poll-yield when the slot is occupied.
func (c *Context) Join(th *Thread) {
	if !th.claim.CompareAndSwap(false, true) {
		for !th.Done() {
			c.self.Yield()
		}
		return
	}
	rt := c.rt
	for !th.u.Done() {
		if ult.ParkJoinStep(c.self, th.u, func(j *ult.ULT, e *ult.Executor) {
			rt.workers[e.ID()].dq.PushBottom(j)
		}) {
			break
		}
		c.self.Yield()
	}
	th.free()
}

// Yield re-enters the scheduler (myth_yield).
func (c *Context) Yield() { c.self.Yield() }

// WorkerID reports the rank of the worker currently running the ULT.
func (c *Context) WorkerID() int { return c.self.Owner().ID() }

// IOPark builds the park/unpark pair the aio reactor blocks this ULT
// with: park suspends it (the worker keeps serving its deque), and
// unpark — callable from any goroutine — resumes it through the
// runtime's MPMC injection queue, which any worker may pop. As with
// work stealing, the unit may resume on a different worker than it
// parked on; the model has no placement guarantee to preserve.
func (c *Context) IOPark() (park func(), unpark func()) {
	self, rt := c.self, c.rt
	return func() { self.Suspend() }, func() {
		ult.ResumeAndRequeue(self, func(j *ult.ULT) { rt.inject.Push(j) })
	}
}
