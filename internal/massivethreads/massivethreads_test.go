package massivethreads

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestInitFinalizeBothPolicies(t *testing.T) {
	for _, p := range []Policy{WorkFirst, HelpFirst} {
		rt := Init(2, p)
		if rt.NumWorkers() != 2 {
			t.Fatalf("NumWorkers = %d, want 2", rt.NumWorkers())
		}
		if rt.Policy() != p {
			t.Fatalf("Policy = %v, want %v", rt.Policy(), p)
		}
		rt.Finalize()
	}
}

func TestInitPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Init(0) did not panic")
		}
	}()
	Init(0, WorkFirst)
}

func TestFinalizeIdempotent(t *testing.T) {
	rt := Init(1, HelpFirst)
	rt.Finalize()
	rt.Finalize()
}

func testCreateJoinN(t *testing.T, policy Policy, workers, n int) {
	t.Helper()
	rt := Init(workers, policy)
	defer rt.Finalize()
	var ran atomic.Int64
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = rt.Create(func(c *Context) { ran.Add(1) })
	}
	for _, th := range ths {
		rt.Join(th)
	}
	if got := ran.Load(); got != int64(n) {
		t.Fatalf("ran = %d, want %d", got, n)
	}
}

func TestWorkFirstCreateJoin(t *testing.T)   { testCreateJoinN(t, WorkFirst, 4, 100) }
func TestHelpFirstCreateJoin(t *testing.T)   { testCreateJoinN(t, HelpFirst, 4, 100) }
func TestSingleWorkerWorkFirst(t *testing.T) { testCreateJoinN(t, WorkFirst, 1, 50) }
func TestSingleWorkerHelpFirst(t *testing.T) { testCreateJoinN(t, HelpFirst, 1, 50) }

func TestWorkFirstRunsChildImmediately(t *testing.T) {
	// Under work-first the child body starts before Create returns to
	// the creator's continuation. With one worker this is deterministic:
	// the hint dispatch runs the child to completion before the parked
	// continuation can be re-dispatched. (With more workers a thief can
	// resume the continuation concurrently, so ordering is only
	// probabilistic there.)
	rt := Init(1, WorkFirst)
	defer rt.Finalize()
	var childStarted atomic.Bool
	th := rt.Create(func(c *Context) {
		childStarted.Store(true)
	})
	if !childStarted.Load() {
		t.Fatal("work-first did not run the child before the continuation resumed")
	}
	rt.Join(th)
}

func TestHelpFirstContinuesCreator(t *testing.T) {
	// Under help-first with a single worker, the child cannot run until
	// the creator yields: Create must return with the child not started.
	rt := Init(1, HelpFirst)
	defer rt.Finalize()
	var childStarted atomic.Bool
	th := rt.Create(func(c *Context) { childStarted.Store(true) })
	if childStarted.Load() {
		t.Fatal("help-first ran the child before the creator yielded")
	}
	rt.Join(th)
	if !childStarted.Load() {
		t.Fatal("child never ran")
	}
}

func TestWorkStealingBalancesLoad(t *testing.T) {
	rt := Init(4, HelpFirst)
	defer rt.Finalize()
	const n = 400
	var ran atomic.Int64
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = rt.Create(func(c *Context) {
			// A few yields keep units in flight so thieves find work.
			c.Yield()
			ran.Add(1)
		})
		if i%8 == 0 {
			// Force interleaving rather than relying on timing (the
			// GOMAXPROCS=1 convention of this suite): spawn-free
			// creation is now fast enough that, without handing the
			// processor over, a single-P run can create and consume
			// all units before a thief ever reaches the deque.
			runtime.Gosched()
		}
	}
	for _, th := range ths {
		rt.Join(th)
	}
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
	// Help-first puts everything on worker 0's deque; with 4 workers the
	// only way other workers execute anything is stealing.
	if rt.Steals() == 0 {
		t.Fatal("no steals recorded; idle workers never balanced the load")
	}
}

func TestRecursiveDivideAndConquer(t *testing.T) {
	// The workload MassiveThreads is designed for (§III-C): recursive
	// spawn trees under work-first.
	for _, p := range []Policy{WorkFirst, HelpFirst} {
		rt := Init(4, p)
		var leaves atomic.Int64
		var rec func(c *Context, depth int)
		rec = func(c *Context, depth int) {
			if depth == 0 {
				leaves.Add(1)
				return
			}
			l := c.Create(func(cc *Context) { rec(cc, depth-1) })
			r := c.Create(func(cc *Context) { rec(cc, depth-1) })
			c.Join(l)
			c.Join(r)
		}
		root := rt.Create(func(c *Context) { rec(c, 6) })
		rt.Join(root)
		rt.Finalize()
		if got := leaves.Load(); got != 64 {
			t.Fatalf("%v: leaves = %d, want 64", p, got)
		}
	}
}

func TestNestedCreateFromContext(t *testing.T) {
	rt := Init(2, WorkFirst)
	defer rt.Finalize()
	var sum atomic.Int64
	parent := rt.Create(func(c *Context) {
		kids := make([]*Thread, 10)
		for i := range kids {
			kids[i] = c.Create(func(cc *Context) { sum.Add(1) })
		}
		for _, k := range kids {
			c.Join(k)
		}
	})
	rt.Join(parent)
	if sum.Load() != 10 {
		t.Fatalf("sum = %d, want 10", sum.Load())
	}
}

func TestWorkerIDIsValid(t *testing.T) {
	rt := Init(3, HelpFirst)
	defer rt.Finalize()
	var bad atomic.Int64
	ths := make([]*Thread, 30)
	for i := range ths {
		ths[i] = rt.Create(func(c *Context) {
			if id := c.WorkerID(); id < 0 || id >= 3 {
				bad.Add(1)
			}
		})
	}
	for _, th := range ths {
		rt.Join(th)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d ULTs saw an out-of-range worker ID", bad.Load())
	}
}

func TestPolicyStrings(t *testing.T) {
	if WorkFirst.String() != "work-first" || HelpFirst.String() != "help-first" {
		t.Fatal("policy strings wrong")
	}
}

func TestMainFlowMigrates(t *testing.T) {
	// Under work-first the main flow is pushed to the deque on every
	// create; with several workers it is regularly stolen, so after many
	// creations the primary has usually run on more than one worker.
	// We can't assert migration deterministically, but we can assert the
	// system stays correct while it happens.
	rt := Init(4, WorkFirst)
	defer rt.Finalize()
	for round := 0; round < 50; round++ {
		th := rt.Create(func(c *Context) {})
		rt.Join(th)
	}
}
