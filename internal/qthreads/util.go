package qthreads

import (
	"sync"
	"sync/atomic"

	"repro/internal/feb"
)

// Utility layer mirroring the Qthreads library surface the paper cites in
// §III-D: "a large number of distributed structures such as queues,
// dictionaries, or pools are offered along with for loop and reduction
// functionality" — qt_loop, qt_loopaccum, sincs and a sharded dictionary.

// Loop executes fn(i) for every i in [start, stop) in parallel: the range
// is divided into one qthread per shepherd, dealt round-robin (qt_loop).
// It returns when every iteration completed.
func (rt *Runtime) Loop(start, stop int, fn func(i int)) {
	n := stop - start
	if n <= 0 {
		return
	}
	k := rt.NumShepherds() * rt.cfg.WorkersPerShepherd
	if k > n {
		k = n
	}
	ths := make([]*Thread, k)
	for t := 0; t < k; t++ {
		base, rem := n/k, n%k
		lo := start + t*base + min(t, rem)
		hi := lo + base
		if t < rem {
			hi++
		}
		ths[t] = rt.ForkTo(func(c *Context) {
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}, t%rt.NumShepherds())
	}
	for _, th := range ths {
		rt.ReadFF(th)
	}
}

// LoopAccum is qt_loopaccum: a parallel loop with a reduction. Each
// qthread folds its range into a private accumulator with accum, and the
// per-thread partials are folded together after the join. accum must be
// associative with identity as its neutral element.
func (rt *Runtime) LoopAccum(start, stop int, identity float64,
	accum func(a, b float64) float64, fn func(i int) float64) float64 {

	n := stop - start
	if n <= 0 {
		return identity
	}
	k := rt.NumShepherds() * rt.cfg.WorkersPerShepherd
	if k > n {
		k = n
	}
	partials := make([]float64, k)
	ths := make([]*Thread, k)
	for t := 0; t < k; t++ {
		t := t
		base, rem := n/k, n%k
		lo := start + t*base + min(t, rem)
		hi := lo + base
		if t < rem {
			hi++
		}
		ths[t] = rt.ForkTo(func(c *Context) {
			acc := identity
			for i := lo; i < hi; i++ {
				acc = accum(acc, fn(i))
			}
			partials[t] = acc
		}, t%rt.NumShepherds())
	}
	for _, th := range ths {
		rt.ReadFF(th)
	}
	acc := identity
	for _, p := range partials {
		acc = accum(acc, p)
	}
	return acc
}

// Sinc is the Qthreads "sinc" structure: a dynamic completion counter
// with an attached reduction. Producers registered with Expect submit
// values; waiters block (via the runtime's FEB table) until every
// expected submission arrived.
type Sinc struct {
	rt       *Runtime
	mu       sync.Mutex
	expected int64
	arrived  int64
	value    float64
	accum    func(a, b float64) float64
	ready    atomic.Bool
	word     feb.Addr
}

// NewSinc creates a sinc with the given reduction and initial value.
func (rt *Runtime) NewSinc(initial float64, accum func(a, b float64) float64) *Sinc {
	return &Sinc{rt: rt, value: initial, accum: accum, word: rt.febTable.Alloc()}
}

// Expect registers n additional pending submissions. Expecting after the
// sinc completed panics.
func (s *Sinc) Expect(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ready.Load() {
		panic("qthreads: Expect after sinc completed")
	}
	s.expected += int64(n)
}

// Submit folds v into the sinc and counts one arrival. When the last
// expected arrival lands, waiters are released.
func (s *Sinc) Submit(v float64) {
	s.mu.Lock()
	s.value = s.accum(s.value, v)
	s.arrived++
	fire := s.arrived >= s.expected && s.expected > 0
	s.mu.Unlock()
	if fire {
		s.ready.Store(true)
		s.rt.febTable.WriteF(s.word, 0)
	}
}

// Wait blocks the main thread until all expected submissions arrived and
// returns the reduced value.
func (s *Sinc) Wait() float64 {
	s.rt.febTable.ReadFF(s.word)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.value
}

// WaitFrom is the cooperative form for calls from inside a qthread.
func (s *Sinc) WaitFrom(c *Context) float64 {
	for {
		if _, ok := s.rt.febTable.TryReadFF(s.word); ok {
			break
		}
		c.Yield()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.value
}

// Dict is a sharded concurrent dictionary, one of the distributed
// structures §III-D credits Qthreads with.
type Dict struct {
	shards [16]dictShard
}

type dictShard struct {
	mu sync.Mutex
	m  map[string]any
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{}
	for i := range d.shards {
		d.shards[i].m = make(map[string]any)
	}
	return d
}

func (d *Dict) shard(key string) *dictShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &d.shards[h%16]
}

// Put stores value under key, returning the previous value if any.
func (d *Dict) Put(key string, value any) (prev any, had bool) {
	s := d.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had = s.m[key]
	s.m[key] = value
	return prev, had
}

// Get returns the value under key.
func (d *Dict) Get(key string) (any, bool) {
	s := d.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// Delete removes key, reporting whether it existed.
func (d *Dict) Delete(key string) bool {
	s := d.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, had := s.m[key]
	delete(s.m, key)
	return had
}

// Len reports the number of stored keys.
func (d *Dict) Len() int {
	n := 0
	for i := range d.shards {
		d.shards[i].mu.Lock()
		n += len(d.shards[i].m)
		d.shards[i].mu.Unlock()
	}
	return n
}
