package qthreads

import (
	"sync"

	"repro/internal/feb"
)

// FEBQueue is a bounded MPMC queue built entirely on full/empty-bit
// words — the construction style §III-D describes for Qthreads'
// distributed structures: each slot is an FEB word, producers WriteEF
// (wait-empty, fill) and consumers ReadFE (wait-full, empty), so the
// queue needs no additional condition variables.
type FEBQueue struct {
	t     *feb.Table
	slots []feb.Addr
	mu    sync.Mutex
	head  uint64 // next slot to consume
	tail  uint64 // next slot to produce
}

// NewFEBQueue creates a queue with the given capacity over the runtime's
// FEB table. It panics if capacity < 1.
func (rt *Runtime) NewFEBQueue(capacity int) *FEBQueue {
	if capacity < 1 {
		panic("qthreads: FEBQueue capacity must be >= 1")
	}
	q := &FEBQueue{t: rt.febTable, slots: make([]feb.Addr, capacity)}
	for i := range q.slots {
		q.slots[i] = rt.febTable.Alloc() // allocated empty
	}
	return q
}

// Enqueue blocks until a slot is free, then stores v. Safe for multiple
// producers. Must not be called from inside a qthread (it can block the
// worker); use TryEnqueue there.
func (q *FEBQueue) Enqueue(v uint64) {
	q.mu.Lock()
	slot := q.slots[q.tail%uint64(len(q.slots))]
	q.tail++
	q.mu.Unlock()
	q.t.WriteEF(slot, v)
}

// Dequeue blocks until a value is available and returns it. Safe for
// multiple consumers; same blocking caveat as Enqueue.
func (q *FEBQueue) Dequeue() uint64 {
	q.mu.Lock()
	slot := q.slots[q.head%uint64(len(q.slots))]
	q.head++
	q.mu.Unlock()
	return q.t.ReadFE(slot)
}

// TryDequeue returns a value if one is immediately available. The
// cooperative form for qthread contexts: poll and Yield between attempts.
func (q *FEBQueue) TryDequeue() (uint64, bool) {
	q.mu.Lock()
	slot := q.slots[q.head%uint64(len(q.slots))]
	if _, ok := q.t.TryReadFF(slot); !ok {
		q.mu.Unlock()
		return 0, false
	}
	q.head++
	q.mu.Unlock()
	return q.t.ReadFE(slot), true
}

// Cap reports the queue capacity.
func (q *FEBQueue) Cap() int { return len(q.slots) }
