package qthreads

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLoopCoversRange(t *testing.T) {
	rt := MustInit(PerCPU(4))
	defer rt.Finalize()
	const start, stop = 5, 505
	hits := make([]atomic.Int32, stop)
	rt.Loop(start, stop, func(i int) { hits[i].Add(1) })
	for i := 0; i < start; i++ {
		if hits[i].Load() != 0 {
			t.Fatalf("iteration %d ran outside the range", i)
		}
	}
	for i := start; i < stop; i++ {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("iteration %d ran %d times", i, got)
		}
	}
}

func TestLoopEmptyAndSmall(t *testing.T) {
	rt := MustInit(PerCPU(4))
	defer rt.Finalize()
	rt.Loop(3, 3, func(i int) { t.Error("body ran for empty range") })
	rt.Loop(10, 7, func(i int) { t.Error("body ran for inverted range") })
	var n atomic.Int32
	rt.Loop(0, 2, func(i int) { n.Add(1) }) // fewer iters than workers
	if n.Load() != 2 {
		t.Fatalf("small loop ran %d iterations, want 2", n.Load())
	}
}

func TestLoopAccumSum(t *testing.T) {
	rt := MustInit(PerCPU(3))
	defer rt.Finalize()
	got := rt.LoopAccum(0, 1000, 0,
		func(a, b float64) float64 { return a + b },
		func(i int) float64 { return float64(i) })
	want := float64(1000*999) / 2
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestLoopAccumEmpty(t *testing.T) {
	rt := MustInit(PerCPU(2))
	defer rt.Finalize()
	got := rt.LoopAccum(4, 4, -1,
		func(a, b float64) float64 { return a + b },
		func(i int) float64 { return 100 })
	if got != -1 {
		t.Fatalf("empty accum = %v, want identity", got)
	}
}

// Property: LoopAccum with + equals the sequential sum for any range.
func TestLoopAccumMatchesSequentialProperty(t *testing.T) {
	rt := MustInit(PerCPU(3))
	defer rt.Finalize()
	f := func(n16 uint16) bool {
		n := int(n16 % 500)
		par := rt.LoopAccum(0, n, 0,
			func(a, b float64) float64 { return a + b },
			func(i int) float64 { return float64(i * i) })
		seq := 0.0
		for i := 0; i < n; i++ {
			seq += float64(i * i)
		}
		return par == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSincCollectsAllSubmissions(t *testing.T) {
	rt := MustInit(PerCPU(4))
	defer rt.Finalize()
	s := rt.NewSinc(0, func(a, b float64) float64 { return a + b })
	const n = 64
	s.Expect(n)
	for i := 0; i < n; i++ {
		i := i
		rt.ForkTo(func(c *Context) { s.Submit(float64(i)) }, i%4)
	}
	got := s.Wait()
	want := float64(n*(n-1)) / 2
	if got != want {
		t.Fatalf("sinc value = %v, want %v", got, want)
	}
}

func TestSincWaitFromQthread(t *testing.T) {
	rt := MustInit(PerCPU(2))
	defer rt.Finalize()
	s := rt.NewSinc(1, func(a, b float64) float64 { return a * b })
	s.Expect(3)
	var got atomic.Uint64
	waiter := rt.Fork(func(c *Context) {
		got.Store(uint64(s.WaitFrom(c)))
	})
	for _, v := range []float64{2, 3, 4} {
		v := v
		rt.ForkTo(func(c *Context) { s.Submit(v) }, 1)
	}
	rt.ReadFF(waiter)
	if got.Load() != 24 {
		t.Fatalf("sinc product = %d, want 24", got.Load())
	}
}

func TestSincExpectAfterCompletePanics(t *testing.T) {
	rt := MustInit(PerCPU(1))
	defer rt.Finalize()
	s := rt.NewSinc(0, func(a, b float64) float64 { return a + b })
	s.Expect(1)
	s.Submit(1)
	s.Wait()
	defer func() {
		if recover() == nil {
			t.Fatal("Expect after completion did not panic")
		}
	}()
	s.Expect(1)
}

func TestDictBasics(t *testing.T) {
	d := NewDict()
	if _, ok := d.Get("a"); ok {
		t.Fatal("empty dict returned a value")
	}
	if prev, had := d.Put("a", 1); had || prev != nil {
		t.Fatal("first Put reported a previous value")
	}
	if v, ok := d.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v,%v", v, ok)
	}
	if prev, had := d.Put("a", 2); !had || prev.(int) != 1 {
		t.Fatalf("second Put prev = %v,%v", prev, had)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	if !d.Delete("a") {
		t.Fatal("Delete missed the key")
	}
	if d.Delete("a") {
		t.Fatal("Delete found a deleted key")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
}

func TestDictConcurrentAccessFromQthreads(t *testing.T) {
	rt := MustInit(PerCPU(4))
	defer rt.Finalize()
	d := NewDict()
	const writers, keys = 8, 50
	ths := make([]*Thread, writers)
	for w := 0; w < writers; w++ {
		w := w
		ths[w] = rt.Fork(func(c *Context) {
			for k := 0; k < keys; k++ {
				d.Put(fmt.Sprintf("w%d-k%d", w, k), w*1000+k)
			}
		})
	}
	for _, th := range ths {
		rt.ReadFF(th)
	}
	if got := d.Len(); got != writers*keys {
		t.Fatalf("Len = %d, want %d", got, writers*keys)
	}
	for w := 0; w < writers; w++ {
		for k := 0; k < keys; k++ {
			v, ok := d.Get(fmt.Sprintf("w%d-k%d", w, k))
			if !ok || v.(int) != w*1000+k {
				t.Fatalf("lost write w%d-k%d", w, k)
			}
		}
	}
}

func TestDictConcurrentMixed(t *testing.T) {
	d := NewDict()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				switch (g + i) % 3 {
				case 0:
					d.Put(key, i)
				case 1:
					d.Get(key)
				case 2:
					d.Delete(key)
				}
			}
		}()
	}
	wg.Wait()
	if d.Len() > 17 {
		t.Fatalf("Len = %d, want <= 17", d.Len())
	}
}
