package qthreads

import (
	"sync/atomic"
	"testing"

	"repro/internal/topo"
)

func TestConfigValidation(t *testing.T) {
	if err := (Config{Shepherds: 0, WorkersPerShepherd: 1}).Validate(); err == nil {
		t.Fatal("accepted zero shepherds")
	}
	if err := (Config{Shepherds: 1, WorkersPerShepherd: 0}).Validate(); err == nil {
		t.Fatal("accepted zero workers")
	}
	if _, err := Init(Config{}); err == nil {
		t.Fatal("Init accepted the zero config")
	}
	if got := (Config{Shepherds: 4, WorkersPerShepherd: 2}).String(); got != "4 shepherds x 2 workers" {
		t.Fatalf("String = %q", got)
	}
}

func TestLayoutPresets(t *testing.T) {
	machine := topo.Paper()
	pn := PerNode(machine, 72)
	if pn.Shepherds != 1 || pn.WorkersPerShepherd != 72 {
		t.Fatalf("PerNode = %+v", pn)
	}
	pnDefault := PerNode(machine, 0)
	if pnDefault.WorkersPerShepherd != 72 {
		t.Fatalf("PerNode default workers = %d, want 72", pnDefault.WorkersPerShepherd)
	}
	pc := PerCPU(36)
	if pc.Shepherds != 36 || pc.WorkersPerShepherd != 1 {
		t.Fatalf("PerCPU = %+v", pc)
	}
	ps := PerSocket(machine, 72)
	if ps.Shepherds != 2 || ps.WorkersPerShepherd != 36 {
		t.Fatalf("PerSocket = %+v", ps)
	}
	// Degenerate: fewer threads than sockets still yields a valid layout.
	ps1 := PerSocket(machine, 1)
	if err := ps1.Validate(); err != nil {
		t.Fatalf("PerSocket(1 thread) invalid: %v", err)
	}
}

func TestForkReadFF(t *testing.T) {
	rt := MustInit(PerCPU(4))
	defer rt.Finalize()
	const n = 100
	var ran atomic.Int64
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = rt.Fork(func(c *Context) { ran.Add(1) })
	}
	for _, th := range ths {
		if v := rt.ReadFF(th); v != 0 {
			t.Fatalf("ReadFF = %d, want 0", v)
		}
	}
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
}

func TestForkToTargetsShepherd(t *testing.T) {
	rt := MustInit(PerCPU(3))
	defer rt.Finalize()
	if rt.NumShepherds() != 3 || rt.NumWorkers() != 3 {
		t.Fatalf("layout = %d shepherds / %d workers", rt.NumShepherds(), rt.NumWorkers())
	}
	const n = 30
	var onShep2 atomic.Int64
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = rt.ForkTo(func(c *Context) {
			if c.Shepherd() == 2 {
				onShep2.Add(1)
			}
		}, 2)
	}
	for _, th := range ths {
		rt.ReadFF(th)
	}
	if onShep2.Load() != n {
		t.Fatalf("%d of %d threads saw shepherd 2", onShep2.Load(), n)
	}
}

func TestMultipleWorkersPerShepherd(t *testing.T) {
	rt := MustInit(Config{Shepherds: 1, WorkersPerShepherd: 4})
	defer rt.Finalize()
	const n = 200
	var ran atomic.Int64
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = rt.Fork(func(c *Context) { ran.Add(1) })
	}
	for _, th := range ths {
		rt.ReadFF(th)
	}
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
}

func TestDoneNonBlocking(t *testing.T) {
	rt := MustInit(PerCPU(1))
	defer rt.Finalize()
	th := rt.Fork(func(c *Context) {})
	rt.ReadFF(th)
	if !th.Done() {
		t.Fatal("Done = false after ReadFF")
	}
}

func TestNestedForkAndCooperativeReadFF(t *testing.T) {
	rt := MustInit(PerCPU(2))
	defer rt.Finalize()
	var sum atomic.Int64
	parent := rt.Fork(func(c *Context) {
		kids := make([]*Thread, 8)
		for i := range kids {
			kids[i] = c.Fork(func(cc *Context) { sum.Add(1) })
		}
		for _, k := range kids {
			c.ReadFF(k) // cooperative join: polls and yields
		}
		remote := c.ForkTo(func(cc *Context) { sum.Add(10) }, 1)
		c.ReadFF(remote)
	})
	rt.ReadFF(parent)
	if got := sum.Load(); got != 18 {
		t.Fatalf("sum = %d, want 18", got)
	}
}

func TestYieldInterleavesOnOneWorker(t *testing.T) {
	// One shepherd, one worker: two qthreads can only interleave if
	// Yield really returns control to the shepherd queue.
	rt := MustInit(PerCPU(1))
	defer rt.Finalize()
	var mu atomic.Int64
	var order []int64
	appendStep := func(v int64) {
		mu.Add(1)
		order = append(order, v)
	}
	a := rt.Fork(func(c *Context) {
		appendStep(1)
		c.Yield()
		appendStep(3)
	})
	b := rt.Fork(func(c *Context) {
		appendStep(2)
	})
	rt.ReadFF(a)
	rt.ReadFF(b)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("interleaving = %v, want [1 2 3]", order)
	}
}

func TestFEBExposedForUserSync(t *testing.T) {
	rt := MustInit(PerCPU(2))
	defer rt.Finalize()
	addr := rt.FEB().Alloc()
	th := rt.Fork(func(c *Context) {
		rt.FEB().WriteF(addr, 123)
	})
	if v := rt.febTable.ReadFF(addr); v != 123 {
		t.Fatalf("user FEB word = %d, want 123", v)
	}
	rt.ReadFF(th)
}

func TestReturnValueWordIsPerThread(t *testing.T) {
	rt := MustInit(PerCPU(2))
	defer rt.Finalize()
	a := rt.Fork(func(c *Context) {})
	b := rt.Fork(func(c *Context) {})
	if a.Ret() == b.Ret() {
		t.Fatal("two threads share a return-value word")
	}
	rt.ReadFF(a)
	rt.ReadFF(b)
}

func TestFinalizeIdempotent(t *testing.T) {
	rt := MustInit(PerCPU(1))
	rt.Finalize()
	rt.Finalize()
}

func TestShepherdQueueStatsVisible(t *testing.T) {
	rt := MustInit(Config{Shepherds: 1, WorkersPerShepherd: 2})
	defer rt.Finalize()
	const n = 50
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = rt.Fork(func(c *Context) {})
	}
	for _, th := range ths {
		rt.ReadFF(th)
	}
	s := rt.shepherds[0]
	if s.ID() != 0 {
		t.Fatalf("shepherd ID = %d", s.ID())
	}
	if got := s.QueueStats().Pushes.Load(); got < n {
		t.Fatalf("queue pushes = %d, want >= %d", got, n)
	}
}
