// Package qthreads emulates the Qthreads programming model (§III-D): a
// three-level hierarchy of Shepherds → Workers → work units, where
// Shepherds own the work queues and can be bound to the node, a socket or
// a CPU, and synchronization is built on full/empty bits (FEB): a fork
// returns the address of a return-value word that the ULT fills on
// completion, and joining is qthread_readFF on that word (Table II).
//
// Unlike the adopted-main runtimes (Argobots, MassiveThreads, Converse),
// the Qthreads main thread stays outside the runtime: qthread_initialize
// spawns the shepherd/worker pthreads and main blocks in readFF when
// joining — exactly the shape implemented here.
package qthreads

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/feb"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/ult"
)

// Config selects the shepherd/worker layout (§VIII-B3).
type Config struct {
	// Shepherds is the number of shepherds (work-queue domains).
	Shepherds int
	// WorkersPerShepherd is the number of executor threads serving each
	// shepherd's queue.
	WorkersPerShepherd int
	// Policy, when non-nil, constructs each shepherd's pool ordering —
	// the plug-in scheduler slot of Table I. Nil means FIFO, the library
	// default. The factory runs once per shepherd, so pools are never
	// shared.
	Policy func() sched.Policy
}

// Validate reports whether the layout is usable.
func (c Config) Validate() error {
	if c.Shepherds < 1 || c.WorkersPerShepherd < 1 {
		return fmt.Errorf("qthreads: invalid layout %d shepherds x %d workers", c.Shepherds, c.WorkersPerShepherd)
	}
	return nil
}

// String renders the layout like "4 shepherds x 1 worker".
func (c Config) String() string {
	return fmt.Sprintf("%d shepherds x %d workers", c.Shepherds, c.WorkersPerShepherd)
}

// PerNode returns the one-shepherd-manages-the-node layout of §VIII-B3,
// with as many workers as the topology has processing units. Better for a
// reduced number of work units, at the price of load imbalance.
func PerNode(t topo.Topology, nthreads int) Config {
	if nthreads < 1 {
		nthreads = t.Count(topo.LevelPU)
	}
	return Config{Shepherds: 1, WorkersPerShepherd: nthreads}
}

// PerCPU returns the one-shepherd-per-CPU layout (each manages a single
// worker) — the configuration the paper selects for most experiments.
func PerCPU(nthreads int) Config {
	return Config{Shepherds: nthreads, WorkersPerShepherd: 1}
}

// PerSocket returns the one-shepherd-per-socket layout, which the paper
// evaluated and discarded ("it performed much worse than the other
// choices for all scenarios").
func PerSocket(t topo.Topology, nthreads int) Config {
	s := t.Sockets
	if s < 1 {
		s = 1
	}
	w := nthreads / s
	if w < 1 {
		w = 1
	}
	return Config{Shepherds: s, WorkersPerShepherd: w}
}

// Runtime is an initialized Qthreads instance.
type Runtime struct {
	cfg       Config
	shepherds []*Shepherd
	febTable  *feb.Table
	// bulkNext is ForkBulk's round-robin cursor, so successive small
	// batches rotate across shepherds like per-unit dealing does.
	bulkNext atomic.Uint64
	shutdown atomic.Bool
	wg       sync.WaitGroup
	finished atomic.Bool
}

// Shepherd owns one work-unit pool served by its workers. The pool's
// ordering is the configured scheduling policy (FIFO unless Config.Policy
// overrides it).
type Shepherd struct {
	id      int
	rt      *Runtime
	pool    sched.Policy
	workers []*Worker
}

// ID returns the shepherd's rank.
func (s *Shepherd) ID() int { return s.id }

// QueueStats exposes the shepherd pool's counters when the configured
// policy keeps them (FIFO and LIFO do); other policies return nil. The
// contention of many workers sharing one pool is visible here.
func (s *Shepherd) QueueStats() *queue.Stats {
	if p, ok := s.pool.(interface{ Stats() *queue.Stats }); ok {
		return p.Stats()
	}
	return nil
}

// Worker is the middle level of the hierarchy: the executor thread that
// runs work units from its shepherd's queue.
type Worker struct {
	exec *ult.Executor
	shep *Shepherd
}

// Stats exposes the worker's executor counters.
func (w *Worker) Stats() *ult.ExecStats { return w.exec.Stats() }

// Thread is a handle on a forked qthread: the ULT plus the FEB word its
// return value fills. The handle carries the body and per-run context so
// forking allocates only the handle and its FEB word (ult.NewWith), plus
// the descriptor generation so Done stays answerable after a join
// released the descriptor.
//
// Join discipline: the joiner that wins the handle's claim owns the
// descriptor — it may park in the waiter slot and frees the descriptor
// once it observes completion (its pending free keeps the descriptor out
// of the reuse pool meanwhile), mirroring the C library, where a
// qthread's structure is reclaimed once it completes and joins go
// through the FEB word alone. Joiners that lost the claim poll the FEB
// word plus the recycle-safe Done, so concurrent ReadFF calls on one
// handle are safe.
type Thread struct {
	u   *ult.ULT
	ret feb.Addr
	rt  *Runtime
	fn  func(*Context)
	s   *Shepherd
	gen uint64
	// claim elects the one joiner allowed to touch the descriptor and
	// obliged to free it; freed records that the free happened.
	claim atomic.Bool
	freed atomic.Bool
	ctx   Context
}

// qtBody is the closure-free qthread body: completion fills the
// return-value word (deferred so a panicking body, contained by the
// substrate, still releases its joiners), then readFF joins on it.
func qtBody(self *ult.ULT, arg any) {
	th := arg.(*Thread)
	defer th.rt.febTable.WriteF(th.ret, 0)
	th.ctx = Context{rt: th.rt, self: self, shep: th.s}
	th.fn(&th.ctx)
}

// free releases the descriptor. Only the claim winner calls it, after
// observing completion. The body closure is dropped too: handles may be
// retained after the join (for Done), and must not pin what the body
// captured.
func (th *Thread) free() {
	if th.freed.CompareAndSwap(false, true) {
		th.fn = nil
		_ = th.u.Free()
	}
}

// Ret returns the FEB address of the thread's return-value word, usable
// directly with the runtime's FEB table.
func (th *Thread) Ret() feb.Addr { return th.ret }

// Done reports completion without blocking; the generation-counted
// completion word keeps the answer correct after the descriptor was
// freed and recycled.
func (th *Thread) Done() bool { return th.freed.Load() || th.u.DoneAt(th.gen) }

// Context is passed to qthread bodies.
type Context struct {
	rt   *Runtime
	self *ult.ULT
	shep *Shepherd
}

// Init starts the runtime with the given layout (qthread_initialize). The
// caller remains an ordinary goroutine outside the runtime.
func Init(cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{cfg: cfg, febTable: feb.NewTable()}
	pool := cfg.Policy
	if pool == nil {
		pool = sched.Default
	}
	for i := 0; i < cfg.Shepherds; i++ {
		s := &Shepherd{id: i, rt: rt, pool: pool()}
		for w := 0; w < cfg.WorkersPerShepherd; w++ {
			wk := &Worker{exec: ult.NewExecutor(i*cfg.WorkersPerShepherd + w), shep: s}
			s.workers = append(s.workers, wk)
		}
		rt.shepherds = append(rt.shepherds, s)
	}
	for _, s := range rt.shepherds {
		for _, w := range s.workers {
			rt.wg.Add(1)
			go w.loop()
		}
	}
	return rt, nil
}

// MustInit is Init for known-good configurations; it panics on error.
func MustInit(cfg Config) *Runtime {
	rt, err := Init(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// NumShepherds reports the shepherd count.
func (rt *Runtime) NumShepherds() int { return len(rt.shepherds) }

// NumWorkers reports the total worker count.
func (rt *Runtime) NumWorkers() int {
	return len(rt.shepherds) * rt.cfg.WorkersPerShepherd
}

// FEB exposes the runtime's full/empty-bit table for user-level
// synchronization (the free-access-to-memory model of §III-D).
func (rt *Runtime) FEB() *feb.Table { return rt.febTable }

// Fork creates a qthread in shepherd 0's queue — the "current" shepherd
// from the main thread's perspective (qthread_fork, §VIII-B3).
func (rt *Runtime) Fork(fn func(*Context)) *Thread {
	return rt.ForkTo(fn, 0)
}

// ForkTo creates a qthread directly in the named shepherd's queue
// (qthread_fork_to); the paper's microbenchmarks deal work round-robin
// with it.
func (rt *Runtime) ForkTo(fn func(*Context), shepherd int) *Thread {
	s := rt.shepherds[shepherd]
	th := &Thread{ret: rt.febTable.Alloc(), rt: rt, fn: fn, s: s}
	th.u = ult.NewWith(qtBody, th)
	th.gen = th.u.Gen()
	ult.MarkReady(th.u)
	s.pool.Push(th.u)
	return th
}

// ForkBulk forks one qthread per body, dealing contiguous blocks across
// the shepherds with one batched queue insertion per shepherd — the
// round-robin fork_to dispatch of §VIII-B3 with its per-unit submission
// cost amortized. The block rotation continues a runtime-level cursor so
// repeated small batches cover every shepherd instead of piling onto the
// low ranks (shepherds never steal, so dealing is the only balancing).
func (rt *Runtime) ForkBulk(fns []func(*Context)) []*Thread {
	ths := make([]*Thread, len(fns))
	k := len(rt.shepherds)
	per := (len(fns) + k - 1) / k
	start := int(rt.bulkNext.Add(1) - 1)
	var units []ult.Unit
	for blk := 0; blk*per < len(fns); blk++ {
		lo := blk * per
		hi := min(lo+per, len(fns))
		s := rt.shepherds[(start+blk)%k]
		units = units[:0]
		for i := lo; i < hi; i++ {
			th := &Thread{ret: rt.febTable.Alloc(), rt: rt, fn: fns[i], s: s}
			th.u = ult.NewWith(qtBody, th)
			th.gen = th.u.Gen()
			ult.MarkReady(th.u)
			ths[i] = th
			units = append(units, th.u)
		}
		sched.PushAll(s.pool, units)
	}
	return ths
}

// ReadFF joins a thread from outside the runtime: it blocks the caller on
// the thread's return-value word until the qthread fills it
// (qthread_readFF, the join of Table II). The word is filled by a defer
// that runs marginally before the ULT's final state store, so ReadFF
// additionally spins out that last handful of instructions until the
// completion word is published — joiners must observe Done. (This spin
// replaced a channel join that allocated a waiter channel per join.)
func (rt *Runtime) ReadFF(th *Thread) uint64 {
	v := rt.febTable.ReadFF(th.ret)
	for !th.Done() {
		runtime.Gosched()
	}
	// Completion observed; the claim winner releases the descriptor
	// (a parked cooperative joiner holding the claim frees it instead).
	if th.claim.CompareAndSwap(false, true) {
		th.free()
	}
	return v
}

// Finalize stops the workers (qthread_finalize). Forked threads must have
// been joined first.
func (rt *Runtime) Finalize() {
	if !rt.finished.CompareAndSwap(false, true) {
		return
	}
	rt.shutdown.Store(true)
	rt.wg.Wait()
}

// loop is one worker's scheduling cycle: serve the shepherd queue.
// Qthreads does not steal between shepherds; balance comes from placement
// (fork_to), which is why the paper's single-shepherd configuration shows
// load imbalance with many units.
func (w *Worker) loop() {
	rt := w.shep.rt
	defer rt.wg.Done()
	bat := trace.Default().Ring(
		fmt.Sprintf("qthreads/shep%d/es%d", w.shep.id, w.exec.ID()), w.exec.ID()).Batcher()
	defer bat.Close()
	for {
		if res, h, ok := w.exec.DispatchHint(); ok {
			if res == ult.DispatchYielded {
				sched.Requeue(w.shep.pool, h)
			}
			continue
		}
		u := w.shep.pool.Pop()
		if u == nil {
			if rt.shutdown.Load() {
				return
			}
			bat.Idle()
			w.exec.NoteIdle()
			continue
		}
		t, ok := u.(*ult.ULT)
		if !ok {
			panic("qthreads: only ULT work units exist in this model")
		}
		bat.Begin()
		res := w.exec.Dispatch(t)
		bat.Note(trace.KindDispatch, 1)
		if res == ult.DispatchYielded {
			sched.Requeue(w.shep.pool, t)
		}
	}
}

// SchedStats sums the pool counters across every shepherd queue.
func (rt *Runtime) SchedStats() queue.Counts {
	var c queue.Counts
	for _, s := range rt.shepherds {
		c = c.Plus(sched.CountsOf(s.pool))
	}
	return c
}

// --- Context: operations valid inside a running qthread ---

// Yield re-enters the shepherd's scheduler (qthread_yield).
func (c *Context) Yield() { c.self.Yield() }

// Shepherd reports the shepherd the qthread was forked to.
func (c *Context) Shepherd() int { return c.shep.id }

// IOPark builds the park/unpark pair the aio reactor blocks this
// qthread with: park suspends it (the worker serves the shepherd queue
// meanwhile), and unpark — callable from any goroutine — resumes it
// into its own shepherd's queue (sched.Policy pushes are MPMC-safe),
// preserving fork_to placement across the wait.
func (c *Context) IOPark() (park func(), unpark func()) {
	self, pool := c.self, c.shep.pool
	return func() { self.Suspend() }, func() {
		ult.ResumeAndRequeue(self, func(j *ult.ULT) { pool.Push(j) })
	}
}

// Fork creates a child qthread in the same shepherd's queue.
func (c *Context) Fork(fn func(*Context)) *Thread {
	return c.rt.ForkTo(fn, c.shep.id)
}

// ForkTo creates a child qthread in the named shepherd's queue.
func (c *Context) ForkTo(fn func(*Context), shepherd int) *Thread {
	return c.rt.ForkTo(fn, shepherd)
}

// ReadFF joins a thread from inside a qthread. Blocking the executor
// would stall every unit behind it, so the cooperative form parks the
// joiner in the target's single-waiter slot; the finishing qthread
// resumes it directly into its own shepherd's queue, preserving fork_to
// placement. When the slot is held by another joiner it falls back to
// polling the FEB word (and the completion state, see Runtime.ReadFF)
// with yields between polls.
func (c *Context) ReadFF(th *Thread) uint64 {
	if th.claim.CompareAndSwap(false, true) {
		// We own the descriptor: park in its waiter slot, then free it.
		pool := c.shep.pool
		for {
			if v, ok := c.rt.febTable.TryReadFF(th.ret); ok && th.u.Done() {
				th.free()
				return v
			}
			if !ult.ParkJoinStep(c.self, th.u, func(j *ult.ULT, _ *ult.Executor) { pool.Push(j) }) {
				self := c.self
				self.Yield()
			}
			// Resumed (or yielded back): completion implies the word is
			// full; re-read it.
		}
	}
	// Another joiner owns the descriptor (and will free it); poll the
	// word plus the recycle-safe completion state, touching nothing
	// else.
	for {
		if v, ok := c.rt.febTable.TryReadFF(th.ret); ok && th.Done() {
			return v
		}
		c.self.Yield()
	}
}
