package qthreads

import (
	"sync"
	"testing"
)

func TestFEBQueueFIFOSingleProducerConsumer(t *testing.T) {
	rt := MustInit(PerCPU(2))
	defer rt.Finalize()
	q := rt.NewFEBQueue(4)
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
	go func() {
		for i := uint64(0); i < 100; i++ {
			q.Enqueue(i)
		}
	}()
	for i := uint64(0); i < 100; i++ {
		if got := q.Dequeue(); got != i {
			t.Fatalf("dequeue %d = %d (out of order)", i, got)
		}
	}
}

func TestFEBQueueBlocksWhenFull(t *testing.T) {
	rt := MustInit(PerCPU(1))
	defer rt.Finalize()
	q := rt.NewFEBQueue(2)
	q.Enqueue(1)
	q.Enqueue(2)
	done := make(chan struct{})
	go func() {
		q.Enqueue(3) // must block until a slot frees
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Enqueue did not block on a full queue")
	default:
	}
	if got := q.Dequeue(); got != 1 {
		t.Fatalf("Dequeue = %d, want 1", got)
	}
	<-done
	if got := q.Dequeue(); got != 2 {
		t.Fatalf("Dequeue = %d, want 2", got)
	}
	if got := q.Dequeue(); got != 3 {
		t.Fatalf("Dequeue = %d, want 3", got)
	}
}

func TestFEBQueueMPMCConservation(t *testing.T) {
	rt := MustInit(PerCPU(2))
	defer rt.Finalize()
	q := rt.NewFEBQueue(8)
	const producers, perProducer = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(uint64(p*perProducer + i))
			}
		}()
	}
	seen := make([]bool, producers*perProducer)
	var mu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				mu.Lock()
				remaining := false
				for _, s := range seen {
					if !s {
						remaining = true
						break
					}
				}
				mu.Unlock()
				if !remaining {
					return
				}
				if v, ok := q.TryDequeue(); ok {
					mu.Lock()
					if seen[v] {
						t.Errorf("value %d dequeued twice", v)
					}
					seen[v] = true
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	for v, s := range seen {
		if !s {
			t.Fatalf("value %d lost", v)
		}
	}
}

func TestFEBQueueTryDequeueEmpty(t *testing.T) {
	rt := MustInit(PerCPU(1))
	defer rt.Finalize()
	q := rt.NewFEBQueue(2)
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue succeeded on an empty queue")
	}
	q.Enqueue(9)
	v, ok := q.TryDequeue()
	if !ok || v != 9 {
		t.Fatalf("TryDequeue = %d,%v", v, ok)
	}
}

func TestFEBQueueZeroCapPanics(t *testing.T) {
	rt := MustInit(PerCPU(1))
	defer rt.Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity FEBQueue did not panic")
		}
	}()
	rt.NewFEBQueue(0)
}

func TestFEBQueueProducerConsumerQthreads(t *testing.T) {
	// Qthreads produce, main consumes: the FEB hand-off crosses the
	// runtime boundary.
	rt := MustInit(PerCPU(2))
	defer rt.Finalize()
	q := rt.NewFEBQueue(4)
	const n = 50
	th := rt.Fork(func(c *Context) {
		for i := uint64(0); i < n; i++ {
			// Cooperative enqueue: try, yield when full.
			for {
				if _, ok := q.t.TryReadFF(q.slots[q.tail%uint64(len(q.slots))]); !ok {
					break // slot empty → Enqueue will not block long
				}
				c.Yield()
			}
			q.Enqueue(i)
		}
	})
	sum := uint64(0)
	for i := 0; i < n; i++ {
		sum += q.Dequeue()
	}
	rt.ReadFF(th)
	if want := uint64(n * (n - 1) / 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}
