// Package barrier implements the synchronization barriers whose costs the
// paper measures: the central (mutex + condition variable) barrier used by
// gcc OpenMP and Converse Threads — whose join time grows linearly with
// the number of threads (Figure 3) — and a sense-reversing spin barrier as
// the cheaper alternative for active wait policies.
package barrier

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// spinYield gives the Go scheduler a chance to run sibling goroutines
// while a spin barrier busy-waits.
func spinYield() { runtime.Gosched() }

// Barrier is a reusable rendezvous for a fixed number of participants.
type Barrier interface {
	// Wait blocks until all participants have arrived, then releases
	// them. The barrier resets automatically for the next round.
	Wait()
	// Parties reports the number of participants.
	Parties() int
}

// Central is a mutex/condvar barrier with generation counting. Every
// arrival serializes on one lock, which is what makes its cost linear in
// the participant count.
type Central struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
	// Arrivals counts total Wait calls, for tests and overhead studies.
	Arrivals atomic.Uint64
}

// NewCentral returns a central barrier for n participants. It panics if
// n < 1.
func NewCentral(n int) *Central {
	if n < 1 {
		panic("barrier: need at least one participant")
	}
	b := &Central{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait implements Barrier.
func (b *Central) Wait() {
	b.Arrivals.Add(1)
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Parties implements Barrier.
func (b *Central) Parties() int { return b.parties }

// Spin is a sense-reversing spin barrier: arrivals decrement an atomic
// counter and spin on a global sense flag. No lock is taken, so it scales
// better than Central while burning CPU — the trade the OMP_WAIT_POLICY
// active setting makes.
type Spin struct {
	parties int32
	count   atomic.Int32
	sense   atomic.Uint32
}

// NewSpin returns a spin barrier for n participants. It panics if n < 1.
func NewSpin(n int) *Spin {
	if n < 1 {
		panic("barrier: need at least one participant")
	}
	b := &Spin{parties: int32(n)}
	b.count.Store(int32(n))
	return b
}

// Wait implements Barrier.
func (b *Spin) Wait() {
	sense := b.sense.Load()
	if b.count.Add(-1) == 0 {
		b.count.Store(b.parties)
		b.sense.Add(1)
		return
	}
	for b.sense.Load() == sense {
		// Busy wait; the scheduler point keeps the spin from starving
		// sibling goroutines on oversubscribed machines.
		spinYield()
	}
}

// Parties implements Barrier.
func (b *Spin) Parties() int { return int(b.parties) }

// Counter is a completion counter: a join mechanism where one waiter
// blocks until n completions are signalled. It models the sequential
// "check each work unit" joins of Argobots and Qthreads when used with
// TryWait polling, and provides a blocking Wait for passive callers.
type Counter struct {
	mu     sync.Mutex
	cond   *sync.Cond
	target int
	done   int
}

// NewCounter returns a counter expecting n completions.
func NewCounter(n int) *Counter {
	c := &Counter{target: n}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Done signals one completion.
func (c *Counter) Done() {
	c.mu.Lock()
	c.done++
	fire := c.done >= c.target
	c.mu.Unlock()
	if fire {
		c.cond.Broadcast()
	}
}

// Wait blocks until all completions have been signalled.
func (c *Counter) Wait() {
	c.mu.Lock()
	for c.done < c.target {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// TryWait reports whether all completions have been signalled, without
// blocking — the polling join used from inside cooperative ULTs.
func (c *Counter) TryWait() bool {
	c.mu.Lock()
	ok := c.done < c.target
	c.mu.Unlock()
	return !ok
}

// Remaining reports how many completions are still outstanding.
func (c *Counter) Remaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.target - c.done
	if r < 0 {
		r = 0
	}
	return r
}
