package barrier

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func exerciseBarrier(t *testing.T, mk func(n int) Barrier) {
	t.Helper()
	const n, rounds = 8, 20
	b := mk(n)
	if b.Parties() != n {
		t.Fatalf("Parties = %d, want %d", b.Parties(), n)
	}
	var phase atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Everyone must observe the same phase before the
				// barrier; anyone seeing a later phase means a
				// participant escaped a previous round early.
				if int(phase.Load()) > r {
					violations.Add(1)
				}
				b.Wait()
				phase.CompareAndSwap(int32(r), int32(r+1))
				b.Wait()
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d barrier-phase violations", violations.Load())
	}
	if got := phase.Load(); got != rounds {
		t.Fatalf("completed phases = %d, want %d", got, rounds)
	}
}

func TestCentralBarrier(t *testing.T) {
	exerciseBarrier(t, func(n int) Barrier { return NewCentral(n) })
}

func TestSpinBarrier(t *testing.T) {
	exerciseBarrier(t, func(n int) Barrier { return NewSpin(n) })
}

func TestCentralBarrierSingleParty(t *testing.T) {
	b := NewCentral(1)
	for i := 0; i < 5; i++ {
		b.Wait() // must never block
	}
	if b.Arrivals.Load() != 5 {
		t.Fatalf("arrivals = %d, want 5", b.Arrivals.Load())
	}
}

func TestSpinBarrierSingleParty(t *testing.T) {
	b := NewSpin(1)
	for i := 0; i < 5; i++ {
		b.Wait()
	}
}

func TestBarrierPanicsOnZeroParties(t *testing.T) {
	for _, mk := range []func(){
		func() { NewCentral(0) },
		func() { NewSpin(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("zero-party barrier did not panic")
				}
			}()
			mk()
		}()
	}
}

func TestBarrierBlocksUntilLastArrival(t *testing.T) {
	b := NewCentral(2)
	released := make(chan struct{})
	go func() {
		b.Wait()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("barrier released with one of two parties")
	case <-time.After(20 * time.Millisecond):
	}
	b.Wait()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("barrier never released")
	}
}

func TestCounterWait(t *testing.T) {
	c := NewCounter(3)
	if c.TryWait() {
		t.Fatal("TryWait true with no completions")
	}
	if got := c.Remaining(); got != 3 {
		t.Fatalf("Remaining = %d, want 3", got)
	}
	done := make(chan struct{})
	go func() {
		c.Wait()
		close(done)
	}()
	c.Done()
	c.Done()
	select {
	case <-done:
		t.Fatal("Wait released after 2 of 3 completions")
	case <-time.After(20 * time.Millisecond):
	}
	c.Done()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never released")
	}
	if !c.TryWait() {
		t.Fatal("TryWait false after all completions")
	}
	if got := c.Remaining(); got != 0 {
		t.Fatalf("Remaining = %d, want 0", got)
	}
}

func TestCounterOvershootClampsRemaining(t *testing.T) {
	c := NewCounter(1)
	c.Done()
	c.Done()
	if got := c.Remaining(); got != 0 {
		t.Fatalf("Remaining = %d, want 0 after overshoot", got)
	}
}

func TestCounterManyWaiters(t *testing.T) {
	c := NewCounter(1)
	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Wait()
		}()
	}
	c.Done()
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("not all waiters released")
	}
}
