package queue

import (
	"sync"
	"testing"

	"repro/internal/ult"
)

// The mutex containers are no longer on any hot path, but they remain the
// benchmark baseline and back the LIFO policy's MPMC + PushTop shape, so
// they keep their own coverage.

func TestMutexFIFOOrder(t *testing.T) {
	q := NewMutexFIFO(4)
	us := mkUnits(10)
	for _, u := range us {
		q.Push(u)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i, want := range us {
		if got := q.Pop(); got != want {
			t.Fatalf("pop %d out of order", i)
		}
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty returned non-nil")
	}
	if q.Stats().EmptyPops.Load() != 1 {
		t.Fatalf("empty pops = %d, want 1", q.Stats().EmptyPops.Load())
	}
}

func TestMutexFIFOZeroValueAndGrowth(t *testing.T) {
	var q MutexFIFO
	us := mkUnits(100)
	for i := 0; i < 20; i++ {
		q.Push(us[i])
	}
	for i := 0; i < 10; i++ {
		if q.Pop() != us[i] {
			t.Fatalf("wrap pop %d out of order", i)
		}
	}
	for i := 20; i < 100; i++ {
		q.Push(us[i])
	}
	for i := 10; i < 100; i++ {
		if got := q.Pop(); got != us[i] {
			t.Fatalf("pop %d: wrong unit after growth", i)
		}
	}
}

func TestMutexDequeEnds(t *testing.T) {
	d := NewMutexDeque(4)
	us := mkUnits(5)
	for _, u := range us {
		d.PushBottom(u)
	}
	if got := d.StealTop(); got != us[0] {
		t.Fatalf("StealTop = %d, want %d", got.ID(), us[0].ID())
	}
	if got := d.PopBottom(); got != us[4] {
		t.Fatalf("PopBottom = %d, want %d", got.ID(), us[4].ID())
	}
	if got := d.PopFront(); got != us[1] {
		t.Fatalf("PopFront = %d, want %d", got.ID(), us[1].ID())
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestMutexDequePushTopIsOldest(t *testing.T) {
	var d MutexDeque
	us := mkUnits(3)
	d.PushBottom(us[0])
	d.PushBottom(us[1])
	d.PushTop(us[2]) // yield-reinsertion: oldest position
	if got := d.StealTop(); got != us[2] {
		t.Fatalf("StealTop after PushTop = %d, want %d", got.ID(), us[2].ID())
	}
	if got := d.PopBottom(); got != us[1] {
		t.Fatal("PushTop disturbed the owner end")
	}
}

func TestMutexDequeConcurrentMixedProducers(t *testing.T) {
	// The shape the lock-free deque cannot serve: many goroutines pushing
	// the bottom end concurrently (shared LIFO pools).
	var d MutexDeque
	const producers, per = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.PushBottom(ult.NewTasklet(func() {}))
			}
		}()
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for {
		u := d.PopBottom()
		if u == nil {
			break
		}
		if seen[u.ID()] {
			t.Fatalf("unit %d popped twice", u.ID())
		}
		seen[u.ID()] = true
	}
	if len(seen) != producers*per {
		t.Fatalf("popped %d units, want %d", len(seen), producers*per)
	}
}
