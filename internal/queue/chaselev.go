package queue

import (
	"sync/atomic"

	"repro/internal/ult"
)

// LockFree is a Chase–Lev work-stealing deque: the owner pushes and pops
// at the bottom without locks; thieves steal from the top with a single
// CAS. The paper notes MassiveThreads protects its queues with mutexes
// (§III-C); this implementation is the alternative design point, used by
// BenchmarkAblationDequeLocking to quantify what the mutex costs.
//
// Owner operations (PushBottom, PopBottom) must come from one goroutine;
// StealTop is safe from any number of concurrent thieves.
type LockFree struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[lfRing]
	stats  Stats
}

// lfRing is a power-of-two circular buffer.
type lfRing struct {
	mask  int64
	slots []atomic.Pointer[lfSlot]
}

// lfSlot boxes a work unit so slots can be atomic pointers.
type lfSlot struct {
	u ult.Unit
}

func newLFRing(capacity int64) *lfRing {
	return &lfRing{mask: capacity - 1, slots: make([]atomic.Pointer[lfSlot], capacity)}
}

func (r *lfRing) get(i int64) *lfSlot    { return r.slots[i&r.mask].Load() }
func (r *lfRing) put(i int64, s *lfSlot) { r.slots[i&r.mask].Store(s) }
func (r *lfRing) capacity() int64        { return r.mask + 1 }

// NewLockFree returns an empty lock-free deque with room for at least n
// units before the first grow.
func NewLockFree(n int) *LockFree {
	c := int64(8)
	for c < int64(n) {
		c <<= 1
	}
	d := &LockFree{}
	d.ring.Store(newLFRing(c))
	return d
}

// PushBottom inserts a unit at the owner end. Owner-only.
func (d *LockFree) PushBottom(u ult.Unit) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= r.capacity()-1 {
		r = d.grow(r, b, t)
	}
	r.put(b, &lfSlot{u: u})
	d.bottom.Store(b + 1)
	d.stats.Pushes.Add(1)
}

// grow doubles the ring, copying live entries. Owner-only.
func (d *LockFree) grow(old *lfRing, b, t int64) *lfRing {
	nr := newLFRing(old.capacity() * 2)
	for i := t; i < b; i++ {
		nr.put(i, old.get(i))
	}
	d.ring.Store(nr)
	return nr
}

// PopBottom removes the most recently pushed unit. Owner-only.
func (d *LockFree) PopBottom() ult.Unit {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		d.stats.EmptyPops.Add(1)
		return nil
	}
	r := d.ring.Load()
	s := r.get(b)
	if t == b {
		// Last element: race the thieves for it.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			d.stats.EmptyPops.Add(1)
			return nil
		}
	}
	d.stats.Pops.Add(1)
	return s.u
}

// StealTop removes the oldest unit. Safe for concurrent thieves; returns
// nil when the deque is empty or the steal lost a race (callers retry).
func (d *LockFree) StealTop() ult.Unit {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		d.stats.EmptyPops.Add(1)
		return nil
	}
	r := d.ring.Load()
	s := r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		d.stats.Contended.Add(1)
		return nil
	}
	d.stats.Steals.Add(1)
	return s.u
}

// Len reports the approximate number of queued units.
func (d *LockFree) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Stats exposes the deque's counters.
func (d *LockFree) Stats() *Stats { return &d.stats }
