package queue

import (
	"sync"
	"sync/atomic"

	"repro/internal/ult"
)

// Deque is a Chase–Lev work-stealing deque: the owner pushes and pops at
// the bottom without locks or CAS (plain atomic loads and stores), and
// thieves steal from the top with a single CAS. The paper notes
// MassiveThreads protects its queues with mutexes (§III-C); this is the
// contention-free alternative the scheduling hot paths now run on, with
// MutexDeque kept as the measured baseline.
//
// Ownership discipline: PushBottom, PopBottom and PopFront must be called
// from one logical owner at a time — for the runtime emulations this is
// the executor's control-token holder, i.e. either the scheduling loop or
// the single work unit it is currently running, which the hand-off
// protocol already serializes. StealTop is safe from any number of
// concurrent thieves; it returns nil both on empty and on a lost race
// (thieves treat either as "try elsewhere"). Top-end insertion (PushTop)
// is deliberately absent: pushing below a concurrently CAS-advanced top
// reintroduces the ABA race the monotonic top exists to prevent; callers
// that need yield-reinsertion at the oldest end (the LIFO policy) use
// MutexDeque.
//
// Work units are carried in small boxes recycled through an owner-local
// cache backed by a package-level sync.Pool: the unique extractor of a
// box (CAS winner or exclusive owner) returns it, so steady-state
// operation allocates nothing and the owner's push/pop pair does not even
// touch the shared pool.
//
// The zero value is an empty, usable deque.
type Deque struct {
	// top is CAS-hammered by thieves; bottom is stored by the owner on
	// every push and pop. Padding keeps them on separate cache lines so
	// thief traffic does not stall the owner's stores.
	top    atomic.Int64
	_      [7]int64
	bottom atomic.Int64
	_      [7]int64
	ring   atomic.Pointer[dqRing]
	// free is an owner-local cache of recycled boxes, refilled by the
	// owner-side pops. It keeps the owner's push/pop pair off the
	// sync.Pool fast path entirely; only thief-recycled boxes (and
	// overflow) round-trip through dqBoxes.
	free  []*dqBox
	stats Stats
}

// dqFreeCap bounds the owner-local box cache.
const dqFreeCap = 64

// dqRing is a power-of-two circular buffer of box pointers.
type dqRing struct {
	mask  int64
	slots []atomic.Pointer[dqBox]
}

// dqBox carries one work unit. Slots hold box pointers because interface
// values cannot be loaded atomically; recycling the boxes through dqBoxes
// keeps the owner path allocation-free.
type dqBox struct {
	u ult.Unit
}

// dqBoxes recycles deque boxes across all deques. Only the goroutine that
// uniquely extracted a box may return it, so a box is never written while
// a racing (and necessarily failing) thief still holds its pointer.
var dqBoxes = sync.Pool{New: func() any { return new(dqBox) }}

func newDqRing(capacity int64) *dqRing {
	return &dqRing{mask: capacity - 1, slots: make([]atomic.Pointer[dqBox], capacity)}
}

func (r *dqRing) get(i int64) *dqBox    { return r.slots[i&r.mask].Load() }
func (r *dqRing) put(i int64, b *dqBox) { r.slots[i&r.mask].Store(b) }
func (r *dqRing) capacity() int64       { return r.mask + 1 }

// NewDeque returns an empty deque with room for at least n units before
// the first grow.
func NewDeque(n int) *Deque {
	c := int64(8)
	for c < int64(n) {
		c <<= 1
	}
	d := &Deque{}
	d.ring.Store(newDqRing(c))
	return d
}

// PushBottom inserts a unit at the owner end. Owner-only.
func (d *Deque) PushBottom(u ult.Unit) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if r == nil {
		r = newDqRing(8)
		d.ring.Store(r)
	}
	if b-t >= r.capacity()-1 {
		r = d.grow(r, b, t)
	}
	var box *dqBox
	if n := len(d.free); n > 0 {
		box = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		box = dqBoxes.Get().(*dqBox)
	}
	box.u = u
	r.put(b, box)
	d.bottom.Store(b + 1)
	d.stats.Pushes.Add(1)
}

// PushBottomBatch inserts every unit in us at the owner end with a single
// bottom publication: the boxes are filled first and one store of bottom
// makes the whole batch stealable at once. Owner-only.
func (d *Deque) PushBottomBatch(us []ult.Unit) {
	n := int64(len(us))
	if n == 0 {
		return
	}
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if r == nil {
		r = newDqRing(8)
		d.ring.Store(r)
	}
	for b-t+n > r.capacity()-1 {
		r = d.grow(r, b, t)
	}
	for i, u := range us {
		var box *dqBox
		if k := len(d.free); k > 0 {
			box = d.free[k-1]
			d.free = d.free[:k-1]
		} else {
			box = dqBoxes.Get().(*dqBox)
		}
		box.u = u
		r.put(b+int64(i), box)
	}
	d.bottom.Store(b + n)
	d.stats.Pushes.Add(uint64(n))
}

// grow doubles the ring, copying live entries. Owner-only. Thieves keep
// reading the old ring safely: live indices hold the same box pointers in
// both rings, and the top CAS still decides every extraction.
func (d *Deque) grow(old *dqRing, b, t int64) *dqRing {
	nr := newDqRing(old.capacity() * 2)
	for i := t; i < b; i++ {
		nr.put(i, old.get(i))
	}
	d.ring.Store(nr)
	return nr
}

// PopBottom removes the most recently pushed unit. Owner-only.
func (d *Deque) PopBottom() ult.Unit {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		d.stats.EmptyPops.Add(1)
		return nil
	}
	r := d.ring.Load()
	box := r.get(b)
	if t == b {
		// Last element: race the thieves for it.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			d.stats.EmptyPops.Add(1)
			return nil
		}
	}
	// Sole extractor of this box (the sequentially consistent
	// bottom-store/top-load ordering above rules out a concurrent
	// successful steal of index b when t < b).
	u := box.u
	box.u = nil
	d.recycle(box)
	d.stats.Pops.Add(1)
	return u
}

// recycle returns a box the owner extracted to the owner-local cache, or
// to the shared pool once the cache is full. Owner-only.
func (d *Deque) recycle(box *dqBox) {
	if len(d.free) < dqFreeCap {
		d.free = append(d.free, box)
		return
	}
	dqBoxes.Put(box)
}

// StealTop removes the oldest unit. Safe for concurrent thieves; returns
// nil when the deque is empty or the steal lost a race (callers try
// another victim or retry).
func (d *Deque) StealTop() ult.Unit {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		d.stats.EmptyPops.Add(1)
		return nil
	}
	r := d.ring.Load()
	box := r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		d.stats.Contended.Add(1)
		return nil
	}
	u := box.u
	box.u = nil
	dqBoxes.Put(box)
	d.stats.Steals.Add(1)
	return u
}

// PopFront removes the oldest unit from the owner side (FIFO service
// order, used by runtimes that schedule their private pool in arrival
// order). It takes the same CAS path as a steal — the owner is just a
// privileged thief here — but retries lost races instead of giving up,
// and counts the removal as a Pop.
func (d *Deque) PopFront() ult.Unit {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			d.stats.EmptyPops.Add(1)
			return nil
		}
		r := d.ring.Load()
		box := r.get(t)
		if !d.top.CompareAndSwap(t, t+1) {
			d.stats.Contended.Add(1)
			continue
		}
		u := box.u
		box.u = nil
		d.recycle(box)
		d.stats.Pops.Add(1)
		return u
	}
}

// Len reports the approximate number of queued units.
func (d *Deque) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Stats exposes the deque's counters.
func (d *Deque) Stats() *Stats { return &d.stats }
