// Package queue provides the work-unit containers used by the runtime
// emulations: private FIFO queues, owner-LIFO/thief-FIFO deques for work
// stealing, and a single shared MPMC queue modelling the global run queues
// of the Go scheduler and the gcc OpenMP task runtime.
//
// The paper repeatedly attributes performance artifacts to queue choice —
// the contention of Go's single shared queue (§III-F, §VI), the mutex
// protection MassiveThreads' steals require (§III-C), the per-thread
// queues plus stealing of the icc task runtime (§II.A) — so the containers
// here expose contention counters that tests and benchmarks can assert on.
package queue

import (
	"sync"
	"sync/atomic"

	"repro/internal/ult"
)

// Stats aggregates container event counters. All fields are safe for
// concurrent use.
type Stats struct {
	// Pushes counts successful insertions.
	Pushes atomic.Uint64
	// Pops counts successful removals by the owner side.
	Pops atomic.Uint64
	// Steals counts successful removals by the thief side (deques only).
	Steals atomic.Uint64
	// Contended counts lock acquisitions that did not succeed on the
	// first try — a direct measure of queue contention.
	Contended atomic.Uint64
	// EmptyPops counts removal attempts that found the container empty.
	EmptyPops atomic.Uint64
}

// lockCounting acquires mu, bumping the contention counter when the lock
// was not immediately available.
func lockCounting(mu *sync.Mutex, st *Stats) {
	if mu.TryLock() {
		return
	}
	st.Contended.Add(1)
	mu.Lock()
}

// FIFO is a mutex-protected first-in first-out work-unit queue: the private
// per-thread pool used (in its default configuration) by Argobots,
// Qthreads, Converse Threads and MassiveThreads.
//
// The zero value is an empty, usable queue.
type FIFO struct {
	mu    sync.Mutex
	buf   []ult.Unit
	head  int
	count int
	stats Stats
}

// NewFIFO returns an empty FIFO with capacity preallocated for n units.
func NewFIFO(n int) *FIFO {
	return &FIFO{buf: make([]ult.Unit, nextPow2(n))}
}

func nextPow2(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// Push appends a unit to the tail.
func (q *FIFO) Push(u ult.Unit) {
	lockCounting(&q.mu, &q.stats)
	q.grow()
	q.buf[(q.head+q.count)&(len(q.buf)-1)] = u
	q.count++
	q.stats.Pushes.Add(1)
	q.mu.Unlock()
}

// grow doubles the ring when full. Caller holds the lock.
func (q *FIFO) grow() {
	if q.buf == nil {
		q.buf = make([]ult.Unit, 8)
		return
	}
	if q.count < len(q.buf) {
		return
	}
	nb := make([]ult.Unit, len(q.buf)*2)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// Pop removes and returns the head unit, or nil if the queue is empty.
func (q *FIFO) Pop() ult.Unit {
	lockCounting(&q.mu, &q.stats)
	defer q.mu.Unlock()
	if q.count == 0 {
		q.stats.EmptyPops.Add(1)
		return nil
	}
	u := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.count--
	q.stats.Pops.Add(1)
	return u
}

// Len reports the number of queued units.
func (q *FIFO) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Stats exposes the queue's counters.
func (q *FIFO) Stats() *Stats { return &q.stats }

// Deque is a mutex-protected double-ended work-stealing queue: the owner
// pushes and pops at the bottom (LIFO, good locality for recursive work),
// thieves steal from the top (FIFO, oldest — typically largest — work).
// This is the structure behind MassiveThreads workers and the icc OpenMP
// task queues; the paper notes the steals require mutex protection, which
// is exactly what the contention counter measures.
//
// The zero value is an empty, usable deque.
type Deque struct {
	mu    sync.Mutex
	buf   []ult.Unit
	head  int // top: steal end
	count int
	stats Stats
}

// NewDeque returns an empty deque with room for n units preallocated.
func NewDeque(n int) *Deque {
	return &Deque{buf: make([]ult.Unit, nextPow2(n))}
}

// PushBottom inserts a unit at the owner end.
func (d *Deque) PushBottom(u ult.Unit) {
	lockCounting(&d.mu, &d.stats)
	d.grow()
	d.buf[(d.head+d.count)&(len(d.buf)-1)] = u
	d.count++
	d.stats.Pushes.Add(1)
	d.mu.Unlock()
}

func (d *Deque) grow() {
	if d.buf == nil {
		d.buf = make([]ult.Unit, 8)
		return
	}
	if d.count < len(d.buf) {
		return
	}
	nb := make([]ult.Unit, len(d.buf)*2)
	for i := 0; i < d.count; i++ {
		nb[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf = nb
	d.head = 0
}

// PopBottom removes the most recently pushed unit (owner side), or nil.
func (d *Deque) PopBottom() ult.Unit {
	lockCounting(&d.mu, &d.stats)
	defer d.mu.Unlock()
	if d.count == 0 {
		d.stats.EmptyPops.Add(1)
		return nil
	}
	i := (d.head + d.count - 1) & (len(d.buf) - 1)
	u := d.buf[i]
	d.buf[i] = nil
	d.count--
	d.stats.Pops.Add(1)
	return u
}

// PushTop inserts a unit at the steal end — the oldest position. Used to
// requeue units that yielded, so newest-first owners do not redispatch
// the yielder immediately and starve the units it yielded to.
func (d *Deque) PushTop(u ult.Unit) {
	lockCounting(&d.mu, &d.stats)
	d.grow()
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = u
	d.count++
	d.stats.Pushes.Add(1)
	d.mu.Unlock()
}

// StealTop removes the oldest unit (thief side), or nil.
func (d *Deque) StealTop() ult.Unit {
	lockCounting(&d.mu, &d.stats)
	defer d.mu.Unlock()
	if d.count == 0 {
		d.stats.EmptyPops.Add(1)
		return nil
	}
	u := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.count--
	d.stats.Steals.Add(1)
	return u
}

// PopFront removes the oldest unit from the owner side (FIFO service order,
// used by runtimes that schedule their private pool in arrival order).
func (d *Deque) PopFront() ult.Unit {
	lockCounting(&d.mu, &d.stats)
	defer d.mu.Unlock()
	if d.count == 0 {
		d.stats.EmptyPops.Add(1)
		return nil
	}
	u := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.count--
	d.stats.Pops.Add(1)
	return u
}

// Len reports the number of queued units.
func (d *Deque) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Stats exposes the deque's counters.
func (d *Deque) Stats() *Stats { return &d.stats }

// Shared is a single global MPMC queue protected by one mutex — the model
// the paper ascribes to Go's scheduler and the gcc OpenMP task runtime.
// Every producer and consumer serializes on the same lock, so its
// contention counter grows with the number of threads (§VI, Figure 2).
//
// The zero value is an empty, usable queue.
type Shared struct {
	fifo FIFO
}

// NewShared returns an empty shared queue with capacity for n units.
func NewShared(n int) *Shared {
	return &Shared{fifo: FIFO{buf: make([]ult.Unit, nextPow2(n))}}
}

// Push appends a unit.
func (s *Shared) Push(u ult.Unit) { s.fifo.Push(u) }

// Pop removes the oldest unit, or nil.
func (s *Shared) Pop() ult.Unit { return s.fifo.Pop() }

// Len reports the number of queued units.
func (s *Shared) Len() int { return s.fifo.Len() }

// Stats exposes the queue's counters.
func (s *Shared) Stats() *Stats { return s.fifo.Stats() }
