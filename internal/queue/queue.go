// Package queue provides the work-unit containers used by the runtime
// emulations: per-thread FIFO queues, owner-LIFO/thief-FIFO deques for work
// stealing, and a single shared MPMC queue modelling the global run queues
// of the Go scheduler and the gcc OpenMP task runtime.
//
// The paper repeatedly attributes performance artifacts to queue choice —
// the contention of Go's single shared queue (§III-F, §VI), the mutex
// protection MassiveThreads' steals require (§III-C), the per-thread
// queues plus stealing of the icc task runtime (§II.A) — so the containers
// here expose contention counters that tests and benchmarks can assert on.
//
// Two implementations exist for each container shape:
//
//   - The default FIFO (segmented ticket MPMC, fifo.go) and Deque
//     (Chase–Lev, chaselev.go) run the scheduling hot paths without locks:
//     owner-side deque operations are plain atomics, steals are a single
//     CAS, and pushes to the shared queue are one fetch-add.
//   - MutexFIFO and MutexDeque (this file) are the original mutex-guarded
//     containers. They remain the measured baseline for the lock-free
//     ablations and serve the one shape the lock-free deque cannot: fully
//     concurrent multi-producer bottom pushes plus PushTop reinsertion,
//     which the LIFO scheduling policy requires.
package queue

import (
	"sync"
	"sync/atomic"

	"repro/internal/ult"
)

// Stats aggregates container event counters. All fields are atomics and
// safe for concurrent use from any goroutine — the lock-free containers
// update them outside any critical section.
type Stats struct {
	// Pushes counts successful insertions.
	Pushes atomic.Uint64
	// Pops counts successful removals by the owner side.
	Pops atomic.Uint64

	// The owner-side counters above and the thief-side counters below
	// live on separate cache lines: spinning thieves bump Contended and
	// EmptyPops at full speed, and without the split every owner-side
	// push would pay a coherence miss on the shared line.
	_ [6]uint64

	// Steals counts successful removals by the thief side (deques only).
	Steals atomic.Uint64
	// Contended counts operations that did not succeed on the first
	// attempt: a mutex acquisition that had to wait (mutex containers) or
	// a CAS that lost a race (lock-free containers). Either way it is a
	// direct measure of queue contention.
	Contended atomic.Uint64
	// EmptyPops counts removal attempts that found the container empty.
	EmptyPops atomic.Uint64

	_ [5]uint64
}

// ContentionRatio reports contended operations per successful operation —
// the figure the paper's queue-contention arguments are about. For the
// lock-free containers the numerator is the CAS-failure count, so the
// ratio stays comparable across implementations.
func (s *Stats) ContentionRatio() float64 {
	ops := s.Pushes.Load() + s.Pops.Load() + s.Steals.Load()
	if ops == 0 {
		return 0
	}
	return float64(s.Contended.Load()) / float64(ops)
}

// Counts is a plain-value snapshot of Stats, safe to copy, sum across
// pools, and serialize — the export shape the serving tier's metrics
// ride (serve Metrics, Prometheus /metrics).
type Counts struct {
	// Pushes counts successful insertions.
	Pushes uint64 `json:"pushes"`
	// Pops counts successful owner-side removals.
	Pops uint64 `json:"pops"`
	// Steals counts successful thief-side removals.
	Steals uint64 `json:"steals"`
	// Contended counts first-attempt failures (lost CAS or waited lock).
	Contended uint64 `json:"contended"`
	// EmptyPops counts removal attempts that found the pool empty.
	EmptyPops uint64 `json:"empty_pops"`
}

// Snapshot reads the counters into a value. Each field is read with one
// atomic load; the snapshot is per-field consistent, not cross-field.
func (s *Stats) Snapshot() Counts {
	if s == nil {
		return Counts{}
	}
	return Counts{
		Pushes:    s.Pushes.Load(),
		Pops:      s.Pops.Load(),
		Steals:    s.Steals.Load(),
		Contended: s.Contended.Load(),
		EmptyPops: s.EmptyPops.Load(),
	}
}

// Plus returns the field-wise sum, for aggregating per-pool counts.
func (c Counts) Plus(o Counts) Counts {
	return Counts{
		Pushes:    c.Pushes + o.Pushes,
		Pops:      c.Pops + o.Pops,
		Steals:    c.Steals + o.Steals,
		Contended: c.Contended + o.Contended,
		EmptyPops: c.EmptyPops + o.EmptyPops,
	}
}

// lockCounting acquires mu, bumping the contention counter when the lock
// was not immediately available.
func lockCounting(mu *sync.Mutex, st *Stats) {
	if mu.TryLock() {
		return
	}
	st.Contended.Add(1)
	mu.Lock()
}

// MutexFIFO is a mutex-protected first-in first-out work-unit queue — the
// original container behind the private per-thread pools, kept as the
// measured baseline for BenchmarkQueueOps.
//
// The zero value is an empty, usable queue.
type MutexFIFO struct {
	mu    sync.Mutex
	buf   []ult.Unit
	head  int
	count int
	stats Stats
}

// NewMutexFIFO returns an empty MutexFIFO with capacity preallocated for
// n units.
func NewMutexFIFO(n int) *MutexFIFO {
	return &MutexFIFO{buf: make([]ult.Unit, nextPow2(n))}
}

func nextPow2(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// Push appends a unit to the tail.
func (q *MutexFIFO) Push(u ult.Unit) {
	lockCounting(&q.mu, &q.stats)
	q.grow()
	q.buf[(q.head+q.count)&(len(q.buf)-1)] = u
	q.count++
	q.stats.Pushes.Add(1)
	q.mu.Unlock()
}

// grow doubles the ring when full. Caller holds the lock.
func (q *MutexFIFO) grow() {
	if q.buf == nil {
		q.buf = make([]ult.Unit, 8)
		return
	}
	if q.count < len(q.buf) {
		return
	}
	nb := make([]ult.Unit, len(q.buf)*2)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// Pop removes and returns the head unit, or nil if the queue is empty.
func (q *MutexFIFO) Pop() ult.Unit {
	lockCounting(&q.mu, &q.stats)
	defer q.mu.Unlock()
	if q.count == 0 {
		q.stats.EmptyPops.Add(1)
		return nil
	}
	u := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.count--
	q.stats.Pops.Add(1)
	return u
}

// Len reports the number of queued units.
func (q *MutexFIFO) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Stats exposes the queue's counters.
func (q *MutexFIFO) Stats() *Stats { return &q.stats }

// MutexDeque is a mutex-protected double-ended work-stealing queue: the
// owner pushes and pops at the bottom (LIFO, good locality for recursive
// work), thieves steal from the top (FIFO, oldest — typically largest —
// work). This is the structure the paper describes for MassiveThreads
// workers ("the steals require mutex protection", §III-C); the lock-free
// Deque is the alternative design point, and BenchmarkQueueOps quantifies
// what the mutex costs.
//
// Unlike the lock-free Deque, every operation is safe from any goroutine,
// and PushTop can reinsert a unit at the steal end — the two properties
// the LIFO scheduling policy needs (shared pools push from many streams;
// yielded units re-enter at the oldest position).
//
// The zero value is an empty, usable deque.
type MutexDeque struct {
	mu    sync.Mutex
	buf   []ult.Unit
	head  int // top: steal end
	count int
	stats Stats
}

// NewMutexDeque returns an empty deque with room for n units preallocated.
func NewMutexDeque(n int) *MutexDeque {
	return &MutexDeque{buf: make([]ult.Unit, nextPow2(n))}
}

// PushBottom inserts a unit at the owner end.
func (d *MutexDeque) PushBottom(u ult.Unit) {
	lockCounting(&d.mu, &d.stats)
	d.grow()
	d.buf[(d.head+d.count)&(len(d.buf)-1)] = u
	d.count++
	d.stats.Pushes.Add(1)
	d.mu.Unlock()
}

func (d *MutexDeque) grow() {
	if d.buf == nil {
		d.buf = make([]ult.Unit, 8)
		return
	}
	if d.count < len(d.buf) {
		return
	}
	nb := make([]ult.Unit, len(d.buf)*2)
	for i := 0; i < d.count; i++ {
		nb[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf = nb
	d.head = 0
}

// PopBottom removes the most recently pushed unit (owner side), or nil.
func (d *MutexDeque) PopBottom() ult.Unit {
	lockCounting(&d.mu, &d.stats)
	defer d.mu.Unlock()
	if d.count == 0 {
		d.stats.EmptyPops.Add(1)
		return nil
	}
	i := (d.head + d.count - 1) & (len(d.buf) - 1)
	u := d.buf[i]
	d.buf[i] = nil
	d.count--
	d.stats.Pops.Add(1)
	return u
}

// PushBottomBatch inserts every unit in us at the owner end under one
// lock acquisition — the batch form of PushBottom.
func (d *MutexDeque) PushBottomBatch(us []ult.Unit) {
	if len(us) == 0 {
		return
	}
	lockCounting(&d.mu, &d.stats)
	for _, u := range us {
		d.grow()
		d.buf[(d.head+d.count)&(len(d.buf)-1)] = u
		d.count++
	}
	d.stats.Pushes.Add(uint64(len(us)))
	d.mu.Unlock()
}

// PushTop inserts a unit at the steal end — the oldest position. Used to
// requeue units that yielded, so newest-first owners do not redispatch
// the yielder immediately and starve the units it yielded to.
func (d *MutexDeque) PushTop(u ult.Unit) {
	lockCounting(&d.mu, &d.stats)
	d.grow()
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = u
	d.count++
	d.stats.Pushes.Add(1)
	d.mu.Unlock()
}

// StealTop removes the oldest unit (thief side), or nil.
func (d *MutexDeque) StealTop() ult.Unit {
	lockCounting(&d.mu, &d.stats)
	defer d.mu.Unlock()
	if d.count == 0 {
		d.stats.EmptyPops.Add(1)
		return nil
	}
	u := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.count--
	d.stats.Steals.Add(1)
	return u
}

// PopFront removes the oldest unit from the owner side (FIFO service order,
// used by runtimes that schedule their private pool in arrival order).
func (d *MutexDeque) PopFront() ult.Unit {
	lockCounting(&d.mu, &d.stats)
	defer d.mu.Unlock()
	if d.count == 0 {
		d.stats.EmptyPops.Add(1)
		return nil
	}
	u := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.count--
	d.stats.Pops.Add(1)
	return u
}

// Len reports the number of queued units.
func (d *MutexDeque) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Stats exposes the deque's counters.
func (d *MutexDeque) Stats() *Stats { return &d.stats }

// Shared is the single global MPMC queue of the paper's Go-scheduler and
// gcc-OpenMP models (§VI, Figure 2): every producer and consumer targets
// the same queue. It is now backed by the lock-free FIFO, so the queue no
// longer serializes every operation on one mutex; the contention the
// paper predicts is still visible as the CAS-failure count in
// Stats().Contended, which grows with the number of threads hammering the
// shared head.
//
// The zero value is an empty, usable queue.
type Shared struct {
	fifo FIFO
}

// NewShared returns an empty shared queue sized for about n in-flight
// units.
func NewShared(n int) *Shared {
	s := &Shared{}
	s.fifo.reserve()
	return s
}

// Push appends a unit.
func (s *Shared) Push(u ult.Unit) { s.fifo.Push(u) }

// PushBatch appends every unit in us with one multi-ticket reservation.
func (s *Shared) PushBatch(us []ult.Unit) { s.fifo.PushBatch(us) }

// Pop removes the oldest unit, or nil.
func (s *Shared) Pop() ult.Unit { return s.fifo.Pop() }

// Len reports the number of queued units.
func (s *Shared) Len() int { return s.fifo.Len() }

// Stats exposes the queue's counters.
func (s *Shared) Stats() *Stats { return s.fifo.Stats() }
