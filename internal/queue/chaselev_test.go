package queue

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ult"
)

func TestLockFreeSequentialLIFO(t *testing.T) {
	d := NewLockFree(4)
	us := mkUnits(10)
	for _, u := range us {
		d.PushBottom(u)
	}
	if d.Len() != 10 {
		t.Fatalf("Len = %d, want 10", d.Len())
	}
	for i := len(us) - 1; i >= 0; i-- {
		got := d.PopBottom()
		if got != us[i] {
			t.Fatalf("PopBottom out of LIFO order at %d", i)
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("empty deque returned a unit")
	}
}

func TestLockFreeSequentialStealFIFO(t *testing.T) {
	d := NewLockFree(4)
	us := mkUnits(5)
	for _, u := range us {
		d.PushBottom(u)
	}
	for i := 0; i < 5; i++ {
		got := d.StealTop()
		if got != us[i] {
			t.Fatalf("StealTop out of FIFO order at %d", i)
		}
	}
	if d.StealTop() != nil {
		t.Fatal("empty deque allowed a steal")
	}
}

func TestLockFreeGrowthPreservesAll(t *testing.T) {
	d := NewLockFree(2)
	us := mkUnits(200) // forces several grows
	for _, u := range us {
		d.PushBottom(u)
	}
	seen := map[uint64]bool{}
	for u := d.PopBottom(); u != nil; u = d.PopBottom() {
		if seen[u.ID()] {
			t.Fatalf("unit %d extracted twice", u.ID())
		}
		seen[u.ID()] = true
	}
	if len(seen) != 200 {
		t.Fatalf("extracted %d units, want 200", len(seen))
	}
}

func TestLockFreeInterleavedPushPop(t *testing.T) {
	d := NewLockFree(2)
	// Wrap the ring repeatedly.
	for round := 0; round < 50; round++ {
		us := mkUnits(7)
		for _, u := range us {
			d.PushBottom(u)
		}
		for i := 0; i < 3; i++ {
			if d.StealTop() == nil {
				t.Fatal("steal failed with units available")
			}
		}
		for i := 0; i < 4; i++ {
			if d.PopBottom() == nil {
				t.Fatal("pop failed with units available")
			}
		}
		if d.Len() != 0 {
			t.Fatalf("round %d: Len = %d, want 0", round, d.Len())
		}
	}
}

// The central correctness property: under a racing owner and thieves,
// every pushed unit is extracted exactly once.
func TestLockFreeConcurrentConservation(t *testing.T) {
	d := NewLockFree(8)
	const total = 20000
	var extracted sync.Map
	var count atomic.Int64
	record := func(u ult.Unit) {
		if _, dup := extracted.LoadOrStore(u.ID(), true); dup {
			t.Errorf("unit %d extracted twice", u.ID())
		}
		count.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ { // thieves
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if u := d.StealTop(); u != nil {
					record(u)
					continue
				}
				select {
				case <-stop:
					for u := d.StealTop(); u != nil; u = d.StealTop() {
						record(u)
					}
					return
				default:
				}
			}
		}()
	}
	// Owner: pushes all units, pops intermittently.
	for i := 0; i < total; i++ {
		d.PushBottom(ult.NewTasklet(func() {}))
		if i%4 == 0 {
			if u := d.PopBottom(); u != nil {
				record(u)
			}
		}
	}
	for u := d.PopBottom(); u != nil; u = d.PopBottom() {
		record(u)
	}
	close(stop)
	wg.Wait()
	if got := count.Load(); got != total {
		t.Fatalf("extracted %d units, want %d", got, total)
	}
}

func TestLockFreeStatsCounters(t *testing.T) {
	d := NewLockFree(4)
	us := mkUnits(3)
	for _, u := range us {
		d.PushBottom(u)
	}
	d.PopBottom()
	d.StealTop()
	st := d.Stats()
	if st.Pushes.Load() != 3 || st.Pops.Load() != 1 || st.Steals.Load() != 1 {
		t.Fatalf("stats = pushes %d / pops %d / steals %d",
			st.Pushes.Load(), st.Pops.Load(), st.Steals.Load())
	}
}
