package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ult"
)

func TestDequeSequentialLIFO(t *testing.T) {
	d := NewDeque(4)
	us := mkUnits(10)
	for _, u := range us {
		d.PushBottom(u)
	}
	if d.Len() != 10 {
		t.Fatalf("Len = %d, want 10", d.Len())
	}
	for i := len(us) - 1; i >= 0; i-- {
		got := d.PopBottom()
		if got != us[i] {
			t.Fatalf("PopBottom out of LIFO order at %d", i)
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("empty deque returned a unit")
	}
}

func TestDequeSequentialStealFIFO(t *testing.T) {
	d := NewDeque(4)
	us := mkUnits(5)
	for _, u := range us {
		d.PushBottom(u)
	}
	for i := 0; i < 5; i++ {
		got := d.StealTop()
		if got != us[i] {
			t.Fatalf("StealTop out of FIFO order at %d", i)
		}
	}
	if d.StealTop() != nil {
		t.Fatal("empty deque allowed a steal")
	}
}

func TestDequeGrowthPreservesAll(t *testing.T) {
	d := NewDeque(2)
	us := mkUnits(200) // forces several grows
	for _, u := range us {
		d.PushBottom(u)
	}
	seen := map[uint64]bool{}
	for u := d.PopBottom(); u != nil; u = d.PopBottom() {
		if seen[u.ID()] {
			t.Fatalf("unit %d extracted twice", u.ID())
		}
		seen[u.ID()] = true
	}
	if len(seen) != 200 {
		t.Fatalf("extracted %d units, want 200", len(seen))
	}
}

func TestDequeInterleavedPushPop(t *testing.T) {
	d := NewDeque(2)
	// Wrap the ring repeatedly.
	for round := 0; round < 50; round++ {
		us := mkUnits(7)
		for _, u := range us {
			d.PushBottom(u)
		}
		for i := 0; i < 3; i++ {
			if d.StealTop() == nil {
				t.Fatal("steal failed with units available")
			}
		}
		for i := 0; i < 4; i++ {
			if d.PopBottom() == nil {
				t.Fatal("pop failed with units available")
			}
		}
		if d.Len() != 0 {
			t.Fatalf("round %d: Len = %d, want 0", round, d.Len())
		}
	}
}

// The central correctness property of the Chase–Lev deque, at the scale
// the CI race job runs it: one owner racing N stealers over 10^5 units,
// every pushed unit extracted exactly once, nothing lost, nothing
// duplicated.
func TestDequeConcurrentConservation(t *testing.T) {
	for _, stealers := range []int{1, 4, 8} {
		t.Run(map[int]string{1: "stealers-1", 4: "stealers-4", 8: "stealers-8"}[stealers],
			func(t *testing.T) {
				runDequeConservation(t, stealers, 100_000)
			})
	}
}

func runDequeConservation(t *testing.T, stealers, total int) {
	d := NewDeque(8)
	var extracted sync.Map
	var count atomic.Int64
	record := func(u ult.Unit) {
		if _, dup := extracted.LoadOrStore(u.ID(), true); dup {
			t.Errorf("unit %d extracted twice", u.ID())
		}
		count.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < stealers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if u := d.StealTop(); u != nil {
					record(u)
					continue
				}
				select {
				case <-stop:
					for u := d.StealTop(); u != nil; u = d.StealTop() {
						record(u)
					}
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	// Owner: pushes all units, pops intermittently.
	for i := 0; i < total; i++ {
		d.PushBottom(ult.NewTasklet(func() {}))
		if i%4 == 0 {
			if u := d.PopBottom(); u != nil {
				record(u)
			}
		}
	}
	for u := d.PopBottom(); u != nil; u = d.PopBottom() {
		record(u)
	}
	close(stop)
	wg.Wait()
	if got := count.Load(); got != int64(total) {
		t.Fatalf("extracted %d units, want %d", got, total)
	}
}

// With GOMAXPROCS=1 the owner and its thieves interleave on one OS
// thread; the deque must stay live (no spin that starves the other side)
// and still conserve every unit. This is the liveness half of the
// concurrency suite; the conservation half above runs at default
// parallelism under -race in CI.
func TestDequeSingleProcLiveness(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	runDequeConservation(t, 2, 20_000)
}

// Mixing PopFront (owner FIFO service, the MassiveThreads loop) with
// concurrent stealers must also conserve units.
func TestDequePopFrontVsStealers(t *testing.T) {
	d := NewDeque(8)
	const total = 50_000
	var extracted sync.Map
	var count atomic.Int64
	record := func(u ult.Unit) {
		if _, dup := extracted.LoadOrStore(u.ID(), true); dup {
			t.Errorf("unit %d extracted twice", u.ID())
		}
		count.Add(1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if u := d.StealTop(); u != nil {
					record(u)
					continue
				}
				select {
				case <-stop:
					for u := d.StealTop(); u != nil; u = d.StealTop() {
						record(u)
					}
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		d.PushBottom(ult.NewTasklet(func() {}))
		if i%3 == 0 {
			if u := d.PopFront(); u != nil {
				record(u)
			}
		}
	}
	for u := d.PopFront(); u != nil; u = d.PopFront() {
		record(u)
	}
	close(stop)
	wg.Wait()
	if got := count.Load(); got != total {
		t.Fatalf("extracted %d units, want %d", got, total)
	}
}

func TestDequeZeroValue(t *testing.T) {
	var d Deque
	if d.PopBottom() != nil || d.StealTop() != nil || d.PopFront() != nil {
		t.Fatal("zero-value deque invented a unit")
	}
	u := mkUnits(1)[0]
	d.PushBottom(u)
	if d.PopBottom() != u {
		t.Fatal("zero-value deque lost the unit")
	}
}

func TestDequeStatsCounters(t *testing.T) {
	d := NewDeque(4)
	us := mkUnits(3)
	for _, u := range us {
		d.PushBottom(u)
	}
	d.PopBottom()
	d.StealTop()
	st := d.Stats()
	if st.Pushes.Load() != 3 || st.Pops.Load() != 1 || st.Steals.Load() != 1 {
		t.Fatalf("stats = pushes %d / pops %d / steals %d",
			st.Pushes.Load(), st.Pops.Load(), st.Steals.Load())
	}
	if r := st.ContentionRatio(); r != 0 {
		t.Fatalf("sequential contention ratio = %v, want 0", r)
	}
}
