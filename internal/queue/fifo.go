package queue

import (
	"sync/atomic"

	"repro/internal/ult"
)

// segShift sets the segment size of the lock-free FIFO: 512 cells per
// segment keeps the amortized allocation cost to a few bytes per push
// (one ~12 KiB segment per 512 pushes) while bounding the memory a
// bursty producer pins.
const (
	segShift = 9
	segSize  = 1 << segShift
)

// fifoCell is one single-use slot of a segment. The unit field is a plain
// interface value: the producer publishes it with the release store on
// ready, and the unique consumer (the winner of the head CAS) reads it
// after the acquire load of ready, so the access is fully synchronized
// without boxing the unit behind an extra pointer.
type fifoCell struct {
	ready atomic.Uint32
	u     ult.Unit
}

// fifoSeg is a fixed block of consecutive queue positions
// [base, base+segSize). Segments are used exactly once and abandoned to
// the garbage collector when consumed, which is what makes the queue
// ABA-free: a position, and hence a cell, is never reused.
type fifoSeg struct {
	base  uint64
	next  atomic.Pointer[fifoSeg]
	cells [segSize]fifoCell
}

// FIFO is a lock-free, unbounded, multi-producer multi-consumer
// first-in first-out work-unit queue — the container behind the private
// per-thread pools and, via Shared, the global-queue backends.
//
// Producers claim a position with one fetch-add and publish into the
// owning segment's cell; consumers claim the head position with a CAS.
// Order is the ticket order of the fetch-add, i.e. strict arrival order.
// A consumer that observes the head cell claimed-but-unpublished treats
// the queue as momentarily empty rather than spinning on the producer.
//
// The zero value is an empty, usable queue.
type FIFO struct {
	// head is CAS-claimed by consumers, tail fetch-added by producers;
	// padding keeps the two ends on separate cache lines.
	head    atomic.Uint64 // next position to pop
	_       [7]uint64
	tail    atomic.Uint64 // next position to push (ticket counter)
	_       [7]uint64
	headSeg atomic.Pointer[fifoSeg]
	tailSeg atomic.Pointer[fifoSeg] // hint near the tail; may lag
	stats   Stats
}

// NewFIFO returns an empty FIFO with its first segment preallocated.
// The argument is accepted for signature compatibility with the mutex
// containers; segments have a fixed size.
func NewFIFO(n int) *FIFO {
	q := &FIFO{}
	q.reserve()
	return q
}

// reserve installs the first segment so the first push does not pay the
// installation CAS.
func (q *FIFO) reserve() {
	q.headSeg.CompareAndSwap(nil, &fifoSeg{})
}

// firstSeg returns the segment chain's root, installing it on first use
// (zero-value queues).
func (q *FIFO) firstSeg() *fifoSeg {
	if s := q.headSeg.Load(); s != nil {
		return s
	}
	q.reserve()
	return q.headSeg.Load()
}

// segFor walks to the segment containing pos, installing missing
// segments along the way. start must be a segment with base <= pos whose
// chain is intact, which both headSeg (never advanced past the head) and
// a base-checked tailSeg hint guarantee.
func (q *FIFO) segFor(start *fifoSeg, pos uint64) *fifoSeg {
	s := start
	for s.base+segSize <= pos {
		next := s.next.Load()
		if next == nil {
			fresh := &fifoSeg{base: s.base + segSize}
			if !s.next.CompareAndSwap(nil, fresh) {
				next = s.next.Load()
			} else {
				next = fresh
			}
		}
		s = next
	}
	return s
}

// Push appends a unit to the tail.
func (q *FIFO) Push(u ult.Unit) {
	pos := q.tail.Add(1) - 1
	start := q.tailSeg.Load()
	if start == nil || start.base > pos {
		start = q.firstSeg()
	}
	s := q.segFor(start, pos)
	// Advance the tail hint; losing the CAS just means another producer
	// installed an equally good or better hint.
	if hint := q.tailSeg.Load(); hint == nil || hint.base < s.base {
		q.tailSeg.CompareAndSwap(hint, s)
	}
	c := &s.cells[pos-s.base]
	c.u = u
	c.ready.Store(1)
	q.stats.Pushes.Add(1)
}

// PushBatch appends every unit in us with a single multi-ticket
// reservation: one fetch-add claims len(us) consecutive cells, then the
// producer publishes into them in order. Consumers already treat a
// claimed-but-unpublished head cell as momentarily empty, so the batch
// needs no extra synchronization; the per-unit cost drops to one cell
// publication (the bulk-creation path of the loop and task figures).
func (q *FIFO) PushBatch(us []ult.Unit) {
	n := uint64(len(us))
	if n == 0 {
		return
	}
	pos := q.tail.Add(n) - n
	start := q.tailSeg.Load()
	if start == nil || start.base > pos {
		start = q.firstSeg()
	}
	s := q.segFor(start, pos)
	for i, u := range us {
		p := pos + uint64(i)
		if p >= s.base+segSize {
			s = q.segFor(s, p)
		}
		c := &s.cells[p-s.base]
		c.u = u
		c.ready.Store(1)
	}
	if hint := q.tailSeg.Load(); hint == nil || hint.base < s.base {
		q.tailSeg.CompareAndSwap(hint, s)
	}
	q.stats.Pushes.Add(n)
}

// Pop removes the oldest unit, or returns nil if the queue is empty (or
// the unit at the head has been claimed by a producer that has not yet
// published it).
func (q *FIFO) Pop() ult.Unit {
	for {
		pos := q.head.Load()
		if pos >= q.tail.Load() {
			q.stats.EmptyPops.Add(1)
			return nil
		}
		s := q.firstSeg()
		if s.base > pos {
			// The root advanced past pos: other consumers already moved
			// the head beyond our snapshot, so the CAS below would fail
			// anyway. Reload and retry.
			q.stats.Contended.Add(1)
			continue
		}
		s = q.segFor(s, pos)
		c := &s.cells[pos-s.base]
		if c.ready.Load() == 0 {
			q.stats.EmptyPops.Add(1)
			return nil
		}
		if !q.head.CompareAndSwap(pos, pos+1) {
			q.stats.Contended.Add(1)
			continue
		}
		u := c.u
		c.u = nil // release the unit before the segment is abandoned
		if pos+1-s.base == segSize {
			q.advanceRoot()
		}
		q.stats.Pops.Add(1)
		return u
	}
}

// advanceRoot drops fully consumed segments from the chain root so the
// garbage collector can reclaim them. It catches the root up to the
// segment containing the head, which keeps the root at most a couple of
// segments behind even when boundary-crossing pops race.
func (q *FIFO) advanceRoot() {
	for {
		hs := q.headSeg.Load()
		if hs == nil || q.head.Load() < hs.base+segSize {
			return
		}
		next := hs.next.Load()
		if next == nil {
			return
		}
		q.headSeg.CompareAndSwap(hs, next)
	}
}

// Len reports the number of queued units (approximate under concurrency).
func (q *FIFO) Len() int {
	t := q.tail.Load()
	h := q.head.Load()
	if h >= t {
		return 0
	}
	return int(t - h)
}

// Stats exposes the queue's counters.
func (q *FIFO) Stats() *Stats { return &q.stats }
