package queue

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ult"
)

// mkUnits builds n distinct tasklets (cheap Unit values for container tests).
func mkUnits(n int) []ult.Unit {
	out := make([]ult.Unit, n)
	for i := range out {
		out[i] = ult.NewTasklet(func() {})
	}
	return out
}

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO(4)
	us := mkUnits(10)
	for _, u := range us {
		q.Push(u)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i, want := range us {
		got := q.Pop()
		if got != want {
			t.Fatalf("pop %d: got unit %d, want %d", i, got.ID(), want.ID())
		}
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty returned non-nil")
	}
	if q.Stats().EmptyPops.Load() != 1 {
		t.Fatalf("empty pops = %d, want 1", q.Stats().EmptyPops.Load())
	}
}

func TestFIFOZeroValueUsable(t *testing.T) {
	var q FIFO
	u := mkUnits(1)[0]
	q.Push(u)
	if got := q.Pop(); got != u {
		t.Fatal("zero-value FIFO lost the unit")
	}
}

func TestFIFOGrowthPreservesOrder(t *testing.T) {
	q := NewFIFO(2)
	us := mkUnits(100)
	// Interleave pushes and pops so the ring wraps before growing.
	for i := 0; i < 20; i++ {
		q.Push(us[i])
	}
	for i := 0; i < 10; i++ {
		if q.Pop() != us[i] {
			t.Fatalf("wrap pop %d out of order", i)
		}
	}
	for i := 20; i < 100; i++ {
		q.Push(us[i])
	}
	for i := 10; i < 100; i++ {
		if got := q.Pop(); got != us[i] {
			t.Fatalf("pop %d: wrong unit after growth", i)
		}
	}
}

func TestFIFOConcurrentProducersConsumers(t *testing.T) {
	q := NewFIFO(8)
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(ult.NewTasklet(func() {}))
			}
		}()
	}
	seen := make(chan ult.Unit, producers*perProducer)
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if u := q.Pop(); u != nil {
					seen <- u
					continue
				}
				select {
				case <-stop:
					// Final drain after producers finish.
					for u := q.Pop(); u != nil; u = q.Pop() {
						seen <- u
					}
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	cwg.Wait()
	close(seen)
	ids := map[uint64]bool{}
	for u := range seen {
		if ids[u.ID()] {
			t.Fatalf("unit %d popped twice", u.ID())
		}
		ids[u.ID()] = true
	}
	if len(ids) != producers*perProducer {
		t.Fatalf("popped %d units, want %d", len(ids), producers*perProducer)
	}
}

func TestDequeLIFOOwnerFIFOThief(t *testing.T) {
	d := NewDeque(4)
	us := mkUnits(5)
	for _, u := range us {
		d.PushBottom(u)
	}
	// Thief takes the oldest.
	if got := d.StealTop(); got != us[0] {
		t.Fatalf("StealTop = %d, want %d", got.ID(), us[0].ID())
	}
	// Owner takes the newest.
	if got := d.PopBottom(); got != us[4] {
		t.Fatalf("PopBottom = %d, want %d", got.ID(), us[4].ID())
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if d.Stats().Steals.Load() != 1 {
		t.Fatalf("steals = %d, want 1", d.Stats().Steals.Load())
	}
}

func TestDequePopFront(t *testing.T) {
	d := NewDeque(4)
	us := mkUnits(3)
	for _, u := range us {
		d.PushBottom(u)
	}
	for i := 0; i < 3; i++ {
		if got := d.PopFront(); got != us[i] {
			t.Fatalf("PopFront %d out of order", i)
		}
	}
	if d.PopFront() != nil || d.PopBottom() != nil || d.StealTop() != nil {
		t.Fatal("empty deque returned a unit")
	}
}

func TestDequeZeroValueUsable(t *testing.T) {
	var d Deque
	u := mkUnits(1)[0]
	d.PushBottom(u)
	if d.PopBottom() != u {
		t.Fatal("zero-value deque lost the unit")
	}
}

func TestDequeConcurrentOwnerAndThieves(t *testing.T) {
	d := NewDeque(8)
	const total = 2000
	var wg sync.WaitGroup
	got := make(chan ult.Unit, total)
	wg.Add(1)
	go func() { // owner: pushes all, pops some
		defer wg.Done()
		for i := 0; i < total; i++ {
			d.PushBottom(ult.NewTasklet(func() {}))
			if i%3 == 0 {
				if u := d.PopBottom(); u != nil {
					got <- u
				}
			}
		}
	}()
	stop := make(chan struct{})
	for i := 0; i < 3; i++ { // thieves
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if u := d.StealTop(); u != nil {
					got <- u
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	// Wait for the owner to finish, then let thieves drain.
	go func() {
		wg.Wait()
	}()
	// Owner is the first Add; crude sync: drain until total reached.
	ids := map[uint64]bool{}
	for len(ids) < total {
		u := <-got
		if ids[u.ID()] {
			t.Fatalf("unit %d extracted twice", u.ID())
		}
		ids[u.ID()] = true
		if len(ids) == total-d.Len() && d.Len() == 0 {
			break
		}
	}
	close(stop)
}

func TestSharedQueueFIFO(t *testing.T) {
	s := NewShared(4)
	us := mkUnits(6)
	for _, u := range us {
		s.Push(u)
	}
	for i := range us {
		if got := s.Pop(); got != us[i] {
			t.Fatalf("shared pop %d out of order", i)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestSharedQueueContentionCounter(t *testing.T) {
	s := NewShared(8)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Push(ult.NewTasklet(func() {}))
				s.Pop()
			}
		}()
	}
	wg.Wait()
	// With 8 workers hammering one lock we expect at least some
	// contention; the exact number is scheduling-dependent.
	t.Logf("contended acquisitions: %d", s.Stats().Contended.Load())
	if s.Stats().Pushes.Load() != workers*500 {
		t.Fatalf("pushes = %d, want %d", s.Stats().Pushes.Load(), workers*500)
	}
}

// Property: any interleaving of pushes and pops on a FIFO preserves
// arrival order of the popped prefix and never loses or duplicates units.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewFIFO(2)
		var pushed, popped []uint64
		for _, isPush := range ops {
			if isPush {
				u := ult.NewTasklet(func() {})
				pushed = append(pushed, u.ID())
				q.Push(u)
			} else if u := q.Pop(); u != nil {
				popped = append(popped, u.ID())
			}
		}
		for u := q.Pop(); u != nil; u = q.Pop() {
			popped = append(popped, u.ID())
		}
		if len(popped) != len(pushed) {
			return false
		}
		for i := range pushed {
			if popped[i] != pushed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a deque conserves units under any owner-side mix of
// PushBottom/PopBottom/StealTop.
func TestDequeConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDeque(2)
		live := map[uint64]bool{}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				u := ult.NewTasklet(func() {})
				live[u.ID()] = true
				d.PushBottom(u)
			case 1:
				if u := d.PopBottom(); u != nil {
					if !live[u.ID()] {
						return false
					}
					delete(live, u.ID())
				}
			case 2:
				if u := d.StealTop(); u != nil {
					if !live[u.ID()] {
						return false
					}
					delete(live, u.ID())
				}
			}
		}
		return d.Len() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
