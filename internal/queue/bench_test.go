package queue

import (
	"sync"
	"testing"

	"repro/internal/ult"
)

// BenchmarkQueueOps is the micro-series behind the lock-free hot-path
// work: each sub-benchmark runs the same operation mix on the lock-free
// container and on its mutex baseline.
//
//   - deque-owner: the owner-path push+pop pair with no thieves — the
//     create/dispatch fast path. The lock-free case must report
//     0 allocs/op (recycled boxes) and lower ns/op than the mutex.
//   - deque-stolen: the same owner loop with three concurrent stealers —
//     the regime the paper's Figures 2–3 sweep into as executors grow.
//   - fifo-mpmc: concurrent producers and consumers on the shared queue
//     (the global-queue model's hot path).
func BenchmarkQueueOps(b *testing.B) {
	type dq interface {
		PushBottom(ult.Unit)
		PopBottom() ult.Unit
		StealTop() ult.Unit
	}
	unit := ult.NewTasklet(func() {})

	ownerLoop := func(b *testing.B, d dq) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.PushBottom(unit)
			if d.PopBottom() == nil {
				b.Fatal("owner pop lost the unit")
			}
		}
	}
	b.Run("deque-owner/lock-free", func(b *testing.B) { ownerLoop(b, NewDeque(256)) })
	b.Run("deque-owner/mutex", func(b *testing.B) { ownerLoop(b, NewMutexDeque(256)) })

	stolenLoop := func(b *testing.B, d dq) {
		const batch = 64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						d.StealTop()
					}
				}
			}()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				d.PushBottom(unit)
			}
			for j := 0; j < batch; j++ {
				if d.PopBottom() == nil {
					break // thieves got there first
				}
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("deque-stolen/lock-free", func(b *testing.B) { stolenLoop(b, NewDeque(256)) })
	b.Run("deque-stolen/mutex", func(b *testing.B) { stolenLoop(b, NewMutexDeque(256)) })

	type fifo interface {
		Push(ult.Unit)
		Pop() ult.Unit
	}
	mpmcLoop := func(b *testing.B, q fifo) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q.Push(unit)
				q.Pop()
			}
		})
	}
	b.Run("fifo-mpmc/lock-free", func(b *testing.B) { mpmcLoop(b, NewFIFO(256)) })
	b.Run("fifo-mpmc/mutex", func(b *testing.B) { mpmcLoop(b, NewMutexFIFO(256)) })
}
