package queue

import (
	"sync"
	"testing"

	"repro/internal/ult"
)

// Batch insertions must be indistinguishable from per-unit pushes to
// every consumer: same order, same counters, same concurrent safety.

func TestFIFOPushBatchOrder(t *testing.T) {
	q := NewFIFO(8)
	us := mkUnits(1200) // crosses two segment boundaries
	q.PushBatch(us[:700])
	q.PushBatch(us[700:])
	if q.Len() != len(us) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(us))
	}
	for i, want := range us {
		if got := q.Pop(); got != want {
			t.Fatalf("Pop out of ticket order at %d", i)
		}
	}
	if q.Pop() != nil {
		t.Fatal("empty queue returned a unit")
	}
	if got := q.Stats().Pushes.Load(); got != uint64(len(us)) {
		t.Fatalf("push count = %d, want %d", got, len(us))
	}
}

func TestFIFOPushBatchEmptyAndZeroValue(t *testing.T) {
	var q FIFO // zero value, no reserved segment
	q.PushBatch(nil)
	if q.Pop() != nil {
		t.Fatal("empty batch produced a unit")
	}
	us := mkUnits(3)
	q.PushBatch(us)
	for i, want := range us {
		if got := q.Pop(); got != want {
			t.Fatalf("Pop out of order at %d", i)
		}
	}
}

// Concurrent batch producers against concurrent consumers: every unit
// comes out exactly once (run under -race in the CI concurrency suite).
func TestFIFOPushBatchConcurrent(t *testing.T) {
	const producers = 4
	const batches = 50
	const batchLen = 32
	q := NewFIFO(8)
	total := producers * batches * batchLen

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				q.PushBatch(mkUnits(batchLen))
			}
		}()
	}

	seen := make(map[ult.Unit]bool, total)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				u := q.Pop()
				if u == nil {
					mu.Lock()
					done := len(seen) == total
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				mu.Lock()
				if seen[u] {
					mu.Unlock()
					t.Error("unit popped twice")
					return
				}
				seen[u] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	if len(seen) != total {
		t.Fatalf("consumed %d units, want %d", len(seen), total)
	}
}

func TestDequePushBottomBatchOrderAndGrowth(t *testing.T) {
	d := NewDeque(4) // forces growth inside the batch
	us := mkUnits(100)
	d.PushBottomBatch(us)
	if d.Len() != len(us) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(us))
	}
	// Owner LIFO service sees the batch newest-first…
	for i := len(us) - 1; i >= len(us)/2; i-- {
		if got := d.PopBottom(); got != us[i] {
			t.Fatalf("PopBottom out of LIFO order at %d", i)
		}
	}
	// …and thieves see the remaining prefix oldest-first.
	for i := 0; i < len(us)/2; i++ {
		if got := d.StealTop(); got != us[i] {
			t.Fatalf("StealTop out of FIFO order at %d", i)
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("empty deque returned a unit")
	}
}

func TestDequePushBottomBatchAgainstStealers(t *testing.T) {
	const rounds = 200
	const batchLen = 16
	d := NewDeque(8)
	total := rounds * batchLen

	var extracted sync.Map
	var count int64
	var mu sync.Mutex
	record := func(u ult.Unit) bool {
		if _, dup := extracted.LoadOrStore(u, true); dup {
			return false
		}
		mu.Lock()
		count++
		mu.Unlock()
		return true
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if u := d.StealTop(); u != nil && !record(u) {
						t.Error("stolen unit extracted twice")
						return
					}
				}
			}
		}()
	}
	for r := 0; r < rounds; r++ {
		d.PushBottomBatch(mkUnits(batchLen))
		for j := 0; j < batchLen; j++ {
			u := d.PopBottom()
			if u == nil {
				break // thieves got there first
			}
			if !record(u) {
				t.Fatal("owner unit extracted twice")
			}
		}
	}
	// Drain what the owner lost to timing.
	for {
		u := d.PopBottom()
		if u == nil {
			break
		}
		if !record(u) {
			t.Fatal("drained unit extracted twice")
		}
	}
	close(stop)
	wg.Wait()
	// Thieves may hold steals not yet recorded? No: record happens in
	// the stealer loop before the next iteration, and wg.Wait ordered us
	// after every record.
	mu.Lock()
	got := count
	mu.Unlock()
	if got != int64(total) {
		t.Fatalf("extracted %d units, want %d", got, total)
	}
}

func TestMutexDequePushBottomBatch(t *testing.T) {
	d := NewMutexDeque(4)
	us := mkUnits(20)
	d.PushBottomBatch(us)
	for i := len(us) - 1; i >= 0; i-- {
		if got := d.PopBottom(); got != us[i] {
			t.Fatalf("PopBottom out of LIFO order at %d", i)
		}
	}
}

func TestSharedPushBatch(t *testing.T) {
	s := NewShared(8)
	us := mkUnits(10)
	s.PushBatch(us)
	for i, want := range us {
		if got := s.Pop(); got != want {
			t.Fatalf("Pop out of order at %d", i)
		}
	}
}

// BenchmarkQueueBatchOps quantifies what the multi-ticket reservation and
// the single bottom publication buy over per-unit pushes — the submission
// cost the bulk-create API amortizes for the loop and task figures.
func BenchmarkQueueBatchOps(b *testing.B) {
	const batchLen = 64
	us := mkUnits(batchLen)

	b.Run("fifo/single", func(b *testing.B) {
		q := NewFIFO(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, u := range us {
				q.Push(u)
			}
			for j := 0; j < batchLen; j++ {
				q.Pop()
			}
		}
	})
	b.Run("fifo/batch", func(b *testing.B) {
		q := NewFIFO(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.PushBatch(us)
			for j := 0; j < batchLen; j++ {
				q.Pop()
			}
		}
	})
	b.Run("deque/single", func(b *testing.B) {
		d := NewDeque(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, u := range us {
				d.PushBottom(u)
			}
			for j := 0; j < batchLen; j++ {
				d.PopBottom()
			}
		}
	})
	b.Run("deque/batch", func(b *testing.B) {
		d := NewDeque(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.PushBottomBatch(us)
			for j := 0; j < batchLen; j++ {
				d.PopBottom()
			}
		}
	})
}
