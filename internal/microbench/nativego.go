package microbench

import (
	"sync"
	"time"

	"repro/internal/blas"
)

// nativeGoSystem runs the same patterns on raw goroutines with
// sync.WaitGroup joins — the modern Go runtime rather than the 2016
// global-queue model the paper describes. It is the ablation series
// behind BenchmarkAblationRawGoroutines: comparing it against the "Go"
// model series quantifies how much the single shared queue costs.
type nativeGoSystem struct {
	n   int
	vec []float32
}

// NewNativeGo builds the raw-goroutine benchmark system.
func NewNativeGo() System { return &nativeGoSystem{} }

func (s *nativeGoSystem) Name() string { return "Go (native)" }

func (s *nativeGoSystem) Setup(nthreads int) { s.n = nthreads }

func (s *nativeGoSystem) Teardown() {}

func (s *nativeGoSystem) vector(size int) []float32 {
	if cap(s.vec) < size {
		s.vec = make([]float32, size)
		blas.Iota(s.vec)
	}
	return s.vec[:size]
}

func (s *nativeGoSystem) CreateJoin() (create, join time.Duration) {
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < s.n; i++ {
		wg.Add(1)
		go func() { wg.Done() }()
	}
	t1 := time.Now()
	wg.Wait()
	return t1.Sub(t0), time.Since(t1)
}

func (s *nativeGoSystem) ForLoop(iters int) time.Duration {
	v := s.vector(iters)
	return Timed(func() {
		var wg sync.WaitGroup
		for t := 0; t < s.n; t++ {
			lo, hi := chunk(iters, s.n, t)
			wg.Add(1)
			go func() {
				defer wg.Done()
				blas.SscalRange(v, scaleFactor, lo, hi)
			}()
		}
		wg.Wait()
	})
}

func (s *nativeGoSystem) TaskSingle(ntasks int) time.Duration {
	v := s.vector(ntasks)
	return Timed(func() {
		var wg sync.WaitGroup
		for i := 0; i < ntasks; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				blas.SscalElem(v, scaleFactor, i)
			}()
		}
		wg.Wait()
	})
}

func (s *nativeGoSystem) TaskParallel(ntasks int) time.Duration {
	v := s.vector(ntasks)
	return Timed(func() {
		var outer sync.WaitGroup
		for t := 0; t < s.n; t++ {
			lo, hi := chunk(ntasks, s.n, t)
			outer.Add(1)
			go func() {
				defer outer.Done()
				var inner sync.WaitGroup
				for i := lo; i < hi; i++ {
					i := i
					inner.Add(1)
					go func() {
						defer inner.Done()
						blas.SscalElem(v, scaleFactor, i)
					}()
				}
				inner.Wait()
			}()
		}
		outer.Wait()
	})
}

func (s *nativeGoSystem) NestedFor(outer, inner int) time.Duration {
	v := s.vector(outer * inner)
	return Timed(func() {
		var owg sync.WaitGroup
		for t := 0; t < s.n; t++ {
			lo, hi := chunk(outer, s.n, t)
			owg.Add(1)
			go func() {
				defer owg.Done()
				for i := lo; i < hi; i++ {
					row := v[i*inner : (i+1)*inner]
					var iwg sync.WaitGroup
					for u := 0; u < s.n; u++ {
						ilo, ihi := chunk(inner, s.n, u)
						iwg.Add(1)
						go func() {
							defer iwg.Done()
							blas.SscalRange(row, scaleFactor, ilo, ihi)
						}()
					}
					iwg.Wait()
				}
			}()
		}
		owg.Wait()
	})
}

func (s *nativeGoSystem) NestedTask(parents, children int) time.Duration {
	v := s.vector(parents * children)
	return Timed(func() {
		var pwg sync.WaitGroup
		for p := 0; p < parents; p++ {
			p := p
			pwg.Add(1)
			go func() {
				defer pwg.Done()
				var cwg sync.WaitGroup
				for k := 0; k < children; k++ {
					idx := p*children + k
					cwg.Add(1)
					go func() {
						defer cwg.Done()
						blas.SscalElem(v, scaleFactor, idx)
					}()
				}
				cwg.Wait()
			}()
		}
		pwg.Wait()
	})
}
