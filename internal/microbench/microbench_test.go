package microbench

import (
	"strings"
	"testing"
	"time"
)

func tinyParams() Params {
	return Params{
		ForIters: 64, Tasks: 40,
		NestedOuter: 6, NestedInner: 8,
		Parents: 6, Children: 3,
		Reps: 2,
	}
}

// allSystems includes the nine paper series plus the native-Go ablation.
func allSystems() []Spec {
	specs := PaperSystems()
	specs = append(specs, Spec{Name: "Go (native)", Make: NewNativeGo})
	return specs
}

func TestEverySystemRunsEveryPattern(t *testing.T) {
	prm := tinyParams()
	patterns := []Pattern{
		PatternCreate, PatternJoin, PatternForLoop,
		PatternTaskSingle, PatternTaskPar, PatternNestedFor, PatternNestedTask,
	}
	for _, spec := range allSystems() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, p := range patterns {
				sys := spec.Make()
				sys.Setup(2)
				st := RunPoint(sys, p, prm)
				sys.Teardown()
				if st.Reps != prm.Reps {
					t.Fatalf("%v: reps = %d, want %d", p, st.Reps, prm.Reps)
				}
				if st.Mean < 0 {
					t.Fatalf("%v: negative mean %v", p, st.Mean)
				}
			}
		})
	}
}

func TestSystemNamesMatchLegend(t *testing.T) {
	want := []string{
		"gcc", "icc", "Argobots Tasklet", "Argobots ULT", "Qthreads",
		"MassiveThreads (H)", "MassiveThreads (W)", "Converse Threads", "Go",
	}
	specs := PaperSystems()
	if len(specs) != len(want) {
		t.Fatalf("PaperSystems has %d entries, want %d", len(specs), len(want))
	}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Fatalf("spec %d = %q, want %q", i, s.Name, want[i])
		}
		sys := s.Make()
		if sys.Name() != want[i] {
			t.Fatalf("system name %q, want %q", sys.Name(), want[i])
		}
	}
}

func TestFindSpec(t *testing.T) {
	if _, ok := FindSpec("Qthreads"); !ok {
		t.Fatal("FindSpec missed Qthreads")
	}
	if _, ok := FindSpec("nope"); ok {
		t.Fatal("FindSpec invented a system")
	}
}

func TestStatsSummarize(t *testing.T) {
	xs := []time.Duration{10, 20, 30}
	s := Summarize(xs)
	if s.Mean != 20 {
		t.Fatalf("mean = %v, want 20", s.Mean)
	}
	if s.Min != 10 || s.Max != 30 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Reps != 3 {
		t.Fatalf("reps = %d", s.Reps)
	}
	// stddev = 10, mean = 20 → RSD = 0.5.
	if s.RSD < 0.49 || s.RSD > 0.51 {
		t.Fatalf("RSD = %v, want 0.5", s.RSD)
	}
}

func TestStatsPercentiles(t *testing.T) {
	// 100..1 shuffled order: percentiles must not depend on input order.
	xs := make([]time.Duration, 100)
	for i := range xs {
		xs[i] = time.Duration(100 - i)
	}
	s := Summarize(xs)
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("P50/P95/P99 = %d/%d/%d, want 50/95/99", s.P50, s.P95, s.P99)
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 100 {
		t.Fatalf("extreme quantiles = %v/%v", Quantile(xs, 0), Quantile(xs, 1))
	}
	one := Summarize([]time.Duration{7})
	if one.P50 != 7 || one.P99 != 7 {
		t.Fatalf("single-sample percentiles = %+v", one)
	}
}

func TestStatsSingleObservation(t *testing.T) {
	s := Summarize([]time.Duration{42})
	if s.RSD != 0 || s.Mean != 42 {
		t.Fatalf("single-obs stats = %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestMeasurePanicsOnZeroReps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Measure(0, ...) did not panic")
		}
	}()
	Measure(0, func() time.Duration { return 0 })
}

func TestMeasure2Phases(t *testing.T) {
	a, b := Measure2(3, func() (time.Duration, time.Duration) { return 5, 7 })
	if a.Mean != 5 || b.Mean != 7 {
		t.Fatalf("phases = %v/%v, want 5/7", a.Mean, b.Mean)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Mean: time.Microsecond, RSD: 0.021, Reps: 500}
	out := s.String()
	if !strings.Contains(out, "n=500") || !strings.Contains(out, "2.1%") {
		t.Fatalf("String = %q", out)
	}
}

func TestThreadCounts(t *testing.T) {
	ts := ThreadCounts(8)
	want := []int{1, 2, 4, 8}
	if len(ts) != len(want) {
		t.Fatalf("ThreadCounts(8) = %v", ts)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("ThreadCounts(8) = %v, want %v", ts, want)
		}
	}
	// Non-paper max is appended.
	ts = ThreadCounts(5)
	if ts[len(ts)-1] != 5 {
		t.Fatalf("ThreadCounts(5) = %v, want trailing 5", ts)
	}
	// Paper scale includes 72.
	ts = ThreadCounts(72)
	if ts[len(ts)-1] != 72 || len(ts) != 13 {
		t.Fatalf("ThreadCounts(72) = %v", ts)
	}
	// Zero means twice the host CPUs.
	ts = ThreadCounts(0)
	if len(ts) == 0 {
		t.Fatal("ThreadCounts(0) empty")
	}
}

func TestParamsPresets(t *testing.T) {
	p := PaperParams()
	if p.ForIters != 1000 || p.Tasks != 1000 || p.NestedOuter != 1000 ||
		p.NestedInner != 1000 || p.Parents != 100 || p.Children != 4 || p.Reps != 500 {
		t.Fatalf("PaperParams = %+v", p)
	}
	q := QuickParams()
	if q.NestedOuter != 100 || q.NestedInner != 100 {
		t.Fatalf("QuickParams nested = %dx%d, want 100x100", q.NestedOuter, q.NestedInner)
	}
}

func TestSweepProducesOrderedPoints(t *testing.T) {
	spec, _ := FindSpec("Argobots Tasklet")
	se := Sweep(spec, PatternCreate, []int{1, 2, 3}, tinyParams())
	if se.System != "Argobots Tasklet" {
		t.Fatalf("series system = %q", se.System)
	}
	if len(se.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(se.Points))
	}
	for i, n := range []int{1, 2, 3} {
		if se.Points[i].Threads != n {
			t.Fatalf("point %d threads = %d, want %d", i, se.Points[i].Threads, n)
		}
	}
}

func TestRenderTable(t *testing.T) {
	series := []Series{
		{System: "A", Points: []Point{{1, Stats{Mean: time.Microsecond}}, {2, Stats{Mean: 2 * time.Microsecond}}}},
		{System: "B", Points: []Point{{1, Stats{Mean: time.Millisecond}}}},
	}
	out := RenderTable("Figure X", series)
	for _, want := range []string{"Figure X", "threads", "A", "B", "1.00µs", "1.000ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if got := RenderTable("empty", nil); !strings.Contains(got, "no data") {
		t.Fatalf("empty table = %q", got)
	}
}

func TestPatternNames(t *testing.T) {
	want := map[Pattern]string{
		PatternCreate:     "fig2-create",
		PatternJoin:       "fig3-join",
		PatternForLoop:    "fig4-forloop",
		PatternTaskSingle: "fig5-task-single",
		PatternTaskPar:    "fig6-task-parallel",
		PatternNestedFor:  "fig7-nested-for",
		PatternNestedTask: "fig8-nested-task",
	}
	for p, w := range want {
		if p.String() != w {
			t.Fatalf("Pattern %d = %q, want %q", p, p.String(), w)
		}
	}
}

func TestChunkCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, k := range []int{1, 3, 8} {
			next := 0
			for tid := 0; tid < k; tid++ {
				lo, hi := chunk(n, k, tid)
				if lo != next || hi < lo {
					t.Fatalf("chunk(%d,%d,%d) = [%d,%d), want lo=%d", n, k, tid, lo, hi, next)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("chunk(%d,%d,*) covers %d", n, k, next)
			}
		}
	}
}
