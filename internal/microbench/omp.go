package microbench

import (
	"time"

	"repro/internal/blas"
	"repro/internal/openmp"
)

// OMPKind selects which OpenMP runtime the system models.
type OMPKind int

const (
	// OMPGCC is the GNU runtime series ("gcc" in the figures).
	OMPGCC OMPKind = iota
	// OMPICC is the Intel runtime series ("icc").
	OMPICC
)

// ompSystem adapts the OpenMP emulation to the benchmark patterns,
// mirroring the listings of §VII. As in §VI, threads are pre-created by a
// warm-up region during Setup so Figure 2/3 measurements exclude the
// Pthread creation step. The wait policy follows §IX-B: passive for gcc
// task benchmarks (the paper had to set OMP_WAIT_POLICY=passive), active
// otherwise being the default — passive is used throughout here to keep
// oversubscribed sweeps stable.
type ompSystem struct {
	kind OMPKind
	rt   *openmp.Runtime
	n    int
	vec  []float32
}

// NewOpenMP builds a benchmark system over the OpenMP emulation.
func NewOpenMP(kind OMPKind) System {
	return &ompSystem{kind: kind}
}

func (s *ompSystem) Name() string {
	if s.kind == OMPICC {
		return "icc"
	}
	return "gcc"
}

func (s *ompSystem) Setup(nthreads int) {
	s.n = nthreads
	flavor := openmp.GCC
	if s.kind == OMPICC {
		flavor = openmp.ICC
	}
	s.rt = openmp.New(openmp.Config{
		Flavor:     flavor,
		NumThreads: nthreads,
		WaitPolicy: openmp.Passive,
	})
	// Warm-up region: pre-create the team threads (§VI fairness).
	s.rt.Parallel(func(tc *openmp.TeamCtx) {})
}

func (s *ompSystem) Teardown() {
	s.rt.Close()
	s.rt = nil
}

func (s *ompSystem) vector(size int) []float32 {
	if cap(s.vec) < size {
		s.vec = make([]float32, size)
		blas.Iota(s.vec)
	}
	return s.vec[:size]
}

func (s *ompSystem) CreateJoin() (create, join time.Duration) {
	return s.rt.ParallelTimed(func(tc *openmp.TeamCtx) {})
}

func (s *ompSystem) ForLoop(iters int) time.Duration {
	v := s.vector(iters)
	return Timed(func() {
		s.rt.ParallelFor(iters, func(i int) {
			blas.SscalElem(v, scaleFactor, i)
		})
	})
}

func (s *ompSystem) TaskSingle(ntasks int) time.Duration {
	v := s.vector(ntasks)
	return Timed(func() {
		s.rt.Parallel(func(tc *openmp.TeamCtx) {
			tc.Single(func() {
				for i := 0; i < ntasks; i++ {
					i := i
					tc.Task(func() { blas.SscalElem(v, scaleFactor, i) })
				}
			})
		})
	})
}

func (s *ompSystem) TaskParallel(ntasks int) time.Duration {
	v := s.vector(ntasks)
	return Timed(func() {
		s.rt.Parallel(func(tc *openmp.TeamCtx) {
			lo, hi := openmp.ChunkRange(ntasks, tc.NumThreads(), tc.TID())
			for i := lo; i < hi; i++ {
				i := i
				tc.Task(func() { blas.SscalElem(v, scaleFactor, i) })
			}
		})
	})
}

func (s *ompSystem) NestedFor(outer, inner int) time.Duration {
	v := s.vector(outer * inner)
	return Timed(func() {
		s.rt.Parallel(func(tc *openmp.TeamCtx) {
			lo, hi := openmp.ChunkRange(outer, tc.NumThreads(), tc.TID())
			for i := lo; i < hi; i++ {
				row := v[i*inner : (i+1)*inner]
				// The nested pragma of Listing 3: a fresh team per
				// encounter (gcc never reuses these threads).
				tc.ParallelFor(inner, func(j int) {
					blas.SscalElem(row, scaleFactor, j)
				})
			}
		})
	})
}

func (s *ompSystem) NestedTask(parents, children int) time.Duration {
	v := s.vector(parents * children)
	return Timed(func() {
		s.rt.Parallel(func(tc *openmp.TeamCtx) {
			tc.Single(func() {
				for p := 0; p < parents; p++ {
					p := p
					tc.Task(func() {
						for k := 0; k < children; k++ {
							idx := p*children + k
							tc.Task(func() { blas.SscalElem(v, scaleFactor, idx) })
						}
					})
				}
			})
		})
	})
}
