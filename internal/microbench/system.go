package microbench

import (
	"time"
)

// System is one benchmarked implementation: an LWT library variant, an
// OpenMP runtime flavor, or native goroutines. The methods are the
// paper's microbenchmark patterns (§VIII-A).
type System interface {
	// Name is the figure-legend label (e.g. "Argobots Tasklet", "gcc").
	Name() string
	// Setup initializes the system for nthreads executors; it is called
	// once per thread count, outside timed regions (matching §VI's
	// fairness note that thread creation is excluded).
	Setup(nthreads int)
	// Teardown releases the system.
	Teardown()

	// CreateJoin creates one trivial work unit per thread and joins
	// them, reporting the two phases separately (Figures 2 and 3).
	CreateJoin() (create, join time.Duration)
	// ForLoop executes an iters-iteration parallel for over Sscal
	// (Figure 4): the iteration space is divided among the threads.
	ForLoop(iters int) time.Duration
	// TaskSingle creates ntasks one-element tasks from a single
	// creator and joins them (Figure 5).
	TaskSingle(ntasks int) time.Duration
	// TaskParallel divides the work across threads, each of which
	// creates its own share of ntasks one-element tasks (Figure 6).
	TaskParallel(ntasks int) time.Duration
	// NestedFor runs the nested parallel-for pattern: outer iterations
	// divided among threads, each iteration spawning a team-sized
	// division of the inner loop (Figure 7).
	NestedFor(outer, inner int) time.Duration
	// NestedTask creates parent tasks from a single creator, each of
	// which creates children tasks (Figure 8).
	NestedTask(parents, children int) time.Duration
}

// Spec names a System constructor, forming the figure legends.
type Spec struct {
	// Name is the legend label.
	Name string
	// Make constructs the (un-setup) system.
	Make func() System
}

// PaperSystems returns the nine series of Figures 2–8 in legend order:
// the two OpenMP runtimes, the Argobots variants, Qthreads,
// MassiveThreads (both policies collapse to the better one per figure in
// the paper; both are exposed here), Converse Threads and Go.
func PaperSystems() []Spec {
	return []Spec{
		{Name: "gcc", Make: func() System { return NewOpenMP(OMPGCC) }},
		{Name: "icc", Make: func() System { return NewOpenMP(OMPICC) }},
		{Name: "Argobots Tasklet", Make: func() System { return NewLWT("argobots", true, "Argobots Tasklet") }},
		{Name: "Argobots ULT", Make: func() System { return NewLWT("argobots", false, "Argobots ULT") }},
		{Name: "Qthreads", Make: func() System { return NewLWT("qthreads", false, "Qthreads") }},
		{Name: "MassiveThreads (H)", Make: func() System { return NewLWT("massivethreads-helpfirst", false, "MassiveThreads (H)") }},
		{Name: "MassiveThreads (W)", Make: func() System { return NewLWT("massivethreads", false, "MassiveThreads (W)") }},
		{Name: "Converse Threads", Make: func() System { return NewLWT("converse", true, "Converse Threads") }},
		{Name: "Go", Make: func() System { return NewLWT("go", false, "Go") }},
	}
}

// FindSpec returns the spec with the given legend name, or false.
func FindSpec(name string) (Spec, bool) {
	for _, s := range PaperSystems() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
