package microbench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Params collects the workload sizes of the paper's experiments, with
// the defaults of §IX. Benchmarks and tests shrink them to fit their
// budgets; the shapes are scale-invariant.
type Params struct {
	// ForIters is the for-loop trip count (Figure 4: 1,000).
	ForIters int
	// Tasks is the task count for single/parallel regions (Figures 5–6:
	// 1,000).
	Tasks int
	// NestedOuter and NestedInner are the nested-for trip counts
	// (Figure 7: 1,000 × 1,000; the paper also ran 100 × 100).
	NestedOuter, NestedInner int
	// Parents and Children shape the nested-task tree (Figure 8:
	// 100 × 4).
	Parents, Children int
	// Reps is the per-point repetition count (§V: 500).
	Reps int
}

// PaperParams returns the exact sizes of the paper's evaluation.
func PaperParams() Params {
	return Params{
		ForIters: 1000, Tasks: 1000,
		NestedOuter: 1000, NestedInner: 1000,
		Parents: 100, Children: 4,
		Reps: 500,
	}
}

// QuickParams returns a laptop-scale configuration preserving the
// ratios: the small nested size (100 × 100) the paper also evaluated,
// and fewer reps.
func QuickParams() Params {
	return Params{
		ForIters: 1000, Tasks: 1000,
		NestedOuter: 100, NestedInner: 100,
		Parents: 100, Children: 4,
		Reps: 20,
	}
}

// ThreadCounts returns the sweep axis. The paper sweeps
// 1..72 on a 36-core/72-HT machine; here the axis is the paper's
// progression clipped to max (0 means twice the host's CPUs, exercising
// the beyond-the-cores regime the paper highlights).
func ThreadCounts(max int) []int {
	if max <= 0 {
		max = 2 * runtime.NumCPU()
	}
	paper := []int{1, 2, 4, 8, 16, 24, 32, 36, 40, 48, 56, 64, 72}
	var out []int
	for _, t := range paper {
		if t <= max {
			out = append(out, t)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Point is one measurement on a sweep.
type Point struct {
	// Threads is the x-axis value.
	Threads int
	// S is the measured statistic at that thread count.
	S Stats
}

// Series is one figure line: a system swept over thread counts.
type Series struct {
	// System is the legend label.
	System string
	// Points are the measurements, ascending in Threads.
	Points []Point
}

// Pattern selects which microbenchmark a sweep runs; the integer values
// match the paper's figure numbers.
type Pattern int

// The sweepable patterns.
const (
	PatternCreate     Pattern = 2
	PatternJoin       Pattern = 3
	PatternForLoop    Pattern = 4
	PatternTaskSingle Pattern = 5
	PatternTaskPar    Pattern = 6
	PatternNestedFor  Pattern = 7
	PatternNestedTask Pattern = 8
)

// String names the pattern after its figure.
func (p Pattern) String() string {
	switch p {
	case PatternCreate:
		return "fig2-create"
	case PatternJoin:
		return "fig3-join"
	case PatternForLoop:
		return "fig4-forloop"
	case PatternTaskSingle:
		return "fig5-task-single"
	case PatternTaskPar:
		return "fig6-task-parallel"
	case PatternNestedFor:
		return "fig7-nested-for"
	case PatternNestedTask:
		return "fig8-nested-task"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// RunPoint measures one (system, pattern, threads) cell. The system must
// already be set up for the thread count.
func RunPoint(s System, p Pattern, prm Params) Stats {
	switch p {
	case PatternCreate:
		c, _ := Measure2(prm.Reps, s.CreateJoin)
		return c
	case PatternJoin:
		_, j := Measure2(prm.Reps, s.CreateJoin)
		return j
	case PatternForLoop:
		return Measure(prm.Reps, func() time.Duration { return s.ForLoop(prm.ForIters) })
	case PatternTaskSingle:
		return Measure(prm.Reps, func() time.Duration { return s.TaskSingle(prm.Tasks) })
	case PatternTaskPar:
		return Measure(prm.Reps, func() time.Duration { return s.TaskParallel(prm.Tasks) })
	case PatternNestedFor:
		return Measure(prm.Reps, func() time.Duration { return s.NestedFor(prm.NestedOuter, prm.NestedInner) })
	case PatternNestedTask:
		return Measure(prm.Reps, func() time.Duration { return s.NestedTask(prm.Parents, prm.Children) })
	default:
		panic("microbench: unknown pattern")
	}
}

// Sweep runs one system over the thread axis for one pattern.
func Sweep(spec Spec, p Pattern, threads []int, prm Params) Series {
	se := Series{System: spec.Name}
	for _, n := range threads {
		s := spec.Make()
		s.Setup(n)
		st := RunPoint(s, p, prm)
		s.Teardown()
		se.Points = append(se.Points, Point{Threads: n, S: st})
	}
	return se
}

// SweepAll runs every paper system over the axis for one pattern.
func SweepAll(p Pattern, threads []int, prm Params) []Series {
	var out []Series
	for _, spec := range PaperSystems() {
		out = append(out, Sweep(spec, p, threads, prm))
	}
	return out
}

// RenderTable formats a set of series as the textual equivalent of a
// figure: rows are thread counts, columns are systems, cells are mean
// times.
func RenderTable(title string, series []Series) string {
	if len(series) == 0 {
		return title + ": (no data)\n"
	}
	// Collect the x axis from the union of points.
	axisSet := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			axisSet[p.Threads] = true
		}
	}
	axis := make([]int, 0, len(axisSet))
	for t := range axisSet {
		axis = append(axis, t)
	}
	sort.Ints(axis)

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-9s", "threads")
	for _, s := range series {
		fmt.Fprintf(&b, "%20s", s.System)
	}
	b.WriteByte('\n')
	for _, t := range axis {
		fmt.Fprintf(&b, "%-9d", t)
		for _, s := range series {
			var cell string
			for _, p := range s.Points {
				if p.Threads == t {
					cell = fmtDuration(p.S.Mean)
					break
				}
			}
			fmt.Fprintf(&b, "%20s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fmtDuration renders with three significant figures like the paper's
// log axes.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
