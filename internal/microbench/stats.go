// Package microbench implements the paper's microbenchmarks (§VI–§IX):
// the create/join basic-functionality measurements of Figures 2–3 and the
// four parallel-pattern benchmarks of Figures 4–8, runnable on every
// emulated runtime through the unified API, on the OpenMP emulation, and
// on native goroutines. Results follow the paper's methodology: each
// measurement is the average of repeated executions with the relative
// standard deviation reported (§V: 500 executions, RSD ≈ 2 %).
package microbench

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Stats summarizes repeated measurements of one quantity.
type Stats struct {
	// Mean is the average duration.
	Mean time.Duration
	// Min and Max bound the observations.
	Min, Max time.Duration
	// P50, P95 and P99 are latency percentiles of the observations —
	// the request-serving view of the same samples (tail behaviour
	// matters once work units carry traffic rather than benchmarks).
	P50, P95, P99 time.Duration
	// RSD is the relative standard deviation (stddev / mean), the
	// stability metric §V reports.
	RSD float64
	// Reps is the number of measurements.
	Reps int
}

// String renders like "12.3µs ±2.1% (n=500)".
func (s Stats) String() string {
	return fmt.Sprintf("%v ±%.1f%% (n=%d)", s.Mean, s.RSD*100, s.Reps)
}

// Measure runs f reps times and summarizes the durations it returns.
// It panics if reps < 1.
func Measure(reps int, f func() time.Duration) Stats {
	if reps < 1 {
		panic("microbench: reps must be >= 1")
	}
	xs := make([]time.Duration, reps)
	for i := range xs {
		xs[i] = f()
	}
	return Summarize(xs)
}

// Measure2 runs f reps times for a function yielding two phase durations
// (create and join) and summarizes each phase.
func Measure2(reps int, f func() (time.Duration, time.Duration)) (Stats, Stats) {
	if reps < 1 {
		panic("microbench: reps must be >= 1")
	}
	as := make([]time.Duration, reps)
	bs := make([]time.Duration, reps)
	for i := range as {
		as[i], bs[i] = f()
	}
	return Summarize(as), Summarize(bs)
}

// Summarize computes Stats over raw observations. It panics on an empty
// slice.
func Summarize(xs []time.Duration) Stats {
	if len(xs) == 0 {
		panic("microbench: no observations")
	}
	var sum float64
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		sum += float64(x)
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := float64(x) - mean
		sq += d * d
	}
	rsd := 0.0
	if mean > 0 && len(xs) > 1 {
		rsd = math.Sqrt(sq/float64(len(xs)-1)) / mean
	}
	sorted := make([]time.Duration, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return Stats{
		Mean: time.Duration(mean),
		Min:  mn,
		Max:  mx,
		P50:  quantileSorted(sorted, 0.50),
		P95:  quantileSorted(sorted, 0.95),
		P99:  quantileSorted(sorted, 0.99),
		RSD:  rsd,
		Reps: len(xs),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observations by
// nearest-rank on a sorted copy. It panics on an empty slice.
func Quantile(xs []time.Duration, q float64) time.Duration {
	if len(xs) == 0 {
		panic("microbench: no observations")
	}
	sorted := make([]time.Duration, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantileSorted(sorted, q)
}

// quantileSorted is the nearest-rank quantile over already-sorted
// observations.
func quantileSorted(sorted []time.Duration, q float64) time.Duration {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// Timed measures one execution of f.
func Timed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}
