package microbench

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleSeries() []Series {
	st := Summarize([]time.Duration{
		10 * time.Microsecond, 12 * time.Microsecond, 11 * time.Microsecond,
	})
	return []Series{
		{System: "Argobots Tasklet", Points: []Point{{Threads: 2, S: st}, {Threads: 4, S: st}}},
		{System: "Go", Points: []Point{{Threads: 2, S: st}}},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := ToJSON(5, "Figure 5", sampleSeries())
	if f.Pattern != "fig5-task-single" {
		t.Fatalf("pattern = %q", f.Pattern)
	}
	if f.Env.NumCPU < 1 || f.Env.GoVersion == "" {
		t.Fatalf("environment not recorded: %+v", f.Env)
	}
	path := filepath.Join(t.TempDir(), BenchFileName(5))
	if err := WriteFigureJSON(path, f); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadFigureJSON(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Series) != 2 || got.Series[0].System != "Argobots Tasklet" {
		t.Fatalf("series lost in round trip: %+v", got.Series)
	}
	p := got.Series[0].Points[0]
	if p.Threads != 2 || p.MeanNs != 11000 || p.P99Ns != 12000 || p.Reps != 3 {
		t.Fatalf("point mangled: %+v", p)
	}
}

func TestBenchFileName(t *testing.T) {
	if got := BenchFileName(2); got != "BENCH_fig2-create.json" {
		t.Fatalf("BenchFileName(2) = %q", got)
	}
}

func TestReadFigureJSONErrors(t *testing.T) {
	if _, err := ReadFigureJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFigureJSON(bad); err == nil {
		t.Fatal("corrupt file read succeeded")
	}
}
