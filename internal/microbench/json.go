package microbench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// The machine-readable result format behind the BENCH_<fig>.json files:
// one figure per file, per-system series over the thread axis, each point
// carrying the mean and the latency percentiles in nanoseconds. The CI
// bench-smoke job archives these files on every push and cmd/benchgate
// compares them against the checked-in bench_baseline.json.

// PointJSON is one (threads, statistics) cell of a series.
type PointJSON struct {
	Threads int     `json:"threads"`
	MeanNs  int64   `json:"mean_ns"`
	MinNs   int64   `json:"min_ns"`
	MaxNs   int64   `json:"max_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P95Ns   int64   `json:"p95_ns"`
	P99Ns   int64   `json:"p99_ns"`
	RSD     float64 `json:"rsd"`
	Reps    int     `json:"reps"`
}

// SeriesJSON is one figure line: a system swept over thread counts.
type SeriesJSON struct {
	System string      `json:"system"`
	Points []PointJSON `json:"points"`
}

// EnvJSON records where a result was produced, so baseline comparisons
// can be read with the machine difference in mind.
type EnvJSON struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Timestamp string `json:"timestamp,omitempty"`
}

// FigureJSON is the machine-readable form of one regenerated figure.
type FigureJSON struct {
	Figure  int          `json:"figure"`
	Pattern string       `json:"pattern"`
	Title   string       `json:"title"`
	Env     EnvJSON      `json:"env"`
	Series  []SeriesJSON `json:"series"`
}

// ToJSON converts a rendered sweep into its machine-readable form.
func ToJSON(fig int, title string, series []Series) FigureJSON {
	out := FigureJSON{
		Figure:  fig,
		Pattern: Pattern(fig).String(),
		Title:   title,
		Env: EnvJSON{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			Timestamp: time.Now().UTC().Format(time.RFC3339),
		},
	}
	for _, s := range series {
		sj := SeriesJSON{System: s.System}
		for _, p := range s.Points {
			sj.Points = append(sj.Points, PointJSON{
				Threads: p.Threads,
				MeanNs:  p.S.Mean.Nanoseconds(),
				MinNs:   p.S.Min.Nanoseconds(),
				MaxNs:   p.S.Max.Nanoseconds(),
				P50Ns:   p.S.P50.Nanoseconds(),
				P95Ns:   p.S.P95.Nanoseconds(),
				P99Ns:   p.S.P99.Nanoseconds(),
				RSD:     p.S.RSD,
				Reps:    p.S.Reps,
			})
		}
		out.Series = append(out.Series, sj)
	}
	return out
}

// BenchFileName is the canonical file name for a figure's JSON result.
func BenchFileName(fig int) string {
	return fmt.Sprintf("BENCH_%s.json", Pattern(fig).String())
}

// WriteFigureJSON writes one figure's result to path, indented for diffs.
func WriteFigureJSON(path string, f FigureJSON) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFigureJSON loads one figure's result from path.
func ReadFigureJSON(path string) (FigureJSON, error) {
	var f FigureJSON
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
