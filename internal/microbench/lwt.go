package microbench

import (
	"time"

	"repro/internal/blas"
	"repro/internal/core"
)

// scaleFactor is the Sscal multiplier; chosen so repeated scaling stays
// in normal float32 range across reps.
const scaleFactor = float32(1.0000001)

// lwtSystem adapts a unified-API backend to the benchmark patterns. The
// implementations follow §VIII-A literally: the master thread divides
// work and creates work units; nested levels create their own units; all
// joins use the backend's Table II join.
type lwtSystem struct {
	backend  string
	tasklets bool // use the backend's tasklet (or fallback) for leaves
	label    string

	r   *core.Runtime
	n   int
	vec []float32
}

// NewLWT builds a benchmark system over the named unified-API backend;
// leaf units are tasklets when tasklets is true (Argobots Tasklet,
// Converse Messages) and ULTs otherwise.
func NewLWT(backend string, tasklets bool, label string) System {
	return &lwtSystem{backend: backend, tasklets: tasklets, label: label}
}

func (s *lwtSystem) Name() string { return s.label }

func (s *lwtSystem) Setup(nthreads int) {
	s.n = nthreads
	s.r = core.MustOpen(core.Config{Backend: s.backend, Executors: nthreads})
}

func (s *lwtSystem) Teardown() {
	s.r.Finalize()
	s.r = nil
}

// vector returns a benchmark vector of at least size elements.
func (s *lwtSystem) vector(size int) []float32 {
	if cap(s.vec) < size {
		s.vec = make([]float32, size)
		blas.Iota(s.vec)
	}
	return s.vec[:size]
}

// leaf creates a leaf work unit from the master.
func (s *lwtSystem) leaf(fn func()) core.Handle {
	if s.tasklets {
		return s.r.TaskletCreate(fn)
	}
	return s.r.ULTCreate(func(core.Ctx) { fn() })
}

// leafFrom creates a leaf work unit from inside a ULT.
func (s *lwtSystem) leafFrom(c core.Ctx, fn func()) core.Handle {
	if s.tasklets {
		return c.TaskletCreate(fn)
	}
	return c.ULTCreate(func(core.Ctx) { fn() })
}

// leafBulk creates one leaf work unit per body through the unified bulk
// path — one batched pool insertion for the whole set, the submission
// pattern the master-driven loop and task figures use.
func (s *lwtSystem) leafBulk(fns []func()) []core.Handle {
	if s.tasklets {
		return s.r.TaskletCreateBulk(fns)
	}
	wrapped := make([]func(core.Ctx), len(fns))
	for i, fn := range fns {
		fn := fn
		wrapped[i] = func(core.Ctx) { fn() }
	}
	return s.r.ULTCreateBulk(wrapped)
}

func (s *lwtSystem) CreateJoin() (create, join time.Duration) {
	hs := make([]core.Handle, s.n)
	t0 := time.Now()
	for i := range hs {
		hs[i] = s.leaf(func() {})
	}
	t1 := time.Now()
	s.r.JoinAll(hs)
	return t1.Sub(t0), time.Since(t1)
}

func (s *lwtSystem) ForLoop(iters int) time.Duration {
	v := s.vector(iters)
	fns := make([]func(), s.n)
	t0 := time.Now()
	for t := 0; t < s.n; t++ {
		lo, hi := chunk(iters, s.n, t)
		fns[t] = func() { blas.SscalRange(v, scaleFactor, lo, hi) }
	}
	s.r.JoinAll(s.leafBulk(fns))
	return time.Since(t0)
}

func (s *lwtSystem) TaskSingle(ntasks int) time.Duration {
	v := s.vector(ntasks)
	fns := make([]func(), ntasks)
	t0 := time.Now()
	for i := 0; i < ntasks; i++ {
		i := i
		fns[i] = func() { blas.SscalElem(v, scaleFactor, i) }
	}
	s.r.JoinAll(s.leafBulk(fns))
	return time.Since(t0)
}

func (s *lwtSystem) TaskParallel(ntasks int) time.Duration {
	v := s.vector(ntasks)
	outer := make([]core.Handle, s.n)
	t0 := time.Now()
	// Step 1: divide the space among threads (like the for loop);
	// step 2: each thread creates its own tasks (§VIII-A2).
	for t := 0; t < s.n; t++ {
		lo, hi := chunk(ntasks, s.n, t)
		outer[t] = s.r.ULTCreate(func(c core.Ctx) {
			inner := make([]core.Handle, 0, hi-lo)
			for i := lo; i < hi; i++ {
				i := i
				inner = append(inner, s.leafFrom(c, func() {
					blas.SscalElem(v, scaleFactor, i)
				}))
			}
			for _, h := range inner {
				c.Join(h)
			}
		})
	}
	s.r.JoinAll(outer)
	return time.Since(t0)
}

func (s *lwtSystem) NestedFor(outer, inner int) time.Duration {
	v := s.vector(outer * inner)
	outerHs := make([]core.Handle, s.n)
	t0 := time.Now()
	for t := 0; t < s.n; t++ {
		lo, hi := chunk(outer, s.n, t)
		outerHs[t] = s.r.ULTCreate(func(c core.Ctx) {
			// Each outer iteration spawns a team-sized division of
			// the inner loop (§VIII-A3).
			for i := lo; i < hi; i++ {
				row := v[i*inner : (i+1)*inner]
				innerHs := make([]core.Handle, s.n)
				for u := 0; u < s.n; u++ {
					ilo, ihi := chunk(inner, s.n, u)
					innerHs[u] = s.leafFrom(c, func() {
						blas.SscalRange(row, scaleFactor, ilo, ihi)
					})
				}
				for _, h := range innerHs {
					c.Join(h)
				}
			}
		})
	}
	s.r.JoinAll(outerHs)
	return time.Since(t0)
}

func (s *lwtSystem) NestedTask(parents, children int) time.Duration {
	v := s.vector(parents * children)
	ph := make([]core.Handle, parents)
	t0 := time.Now()
	for p := 0; p < parents; p++ {
		p := p
		ph[p] = s.r.ULTCreate(func(c core.Ctx) {
			ch := make([]core.Handle, children)
			for k := 0; k < children; k++ {
				idx := p*children + k
				ch[k] = s.leafFrom(c, func() {
					blas.SscalElem(v, scaleFactor, idx)
				})
			}
			for _, h := range ch {
				c.Join(h)
			}
		})
	}
	s.r.JoinAll(ph)
	return time.Since(t0)
}

// chunk computes thread t's half-open share of n items over k threads.
func chunk(n, k, t int) (lo, hi int) {
	base, rem := n/k, n%k
	lo = t*base + min(t, rem)
	hi = lo + base
	if t < rem {
		hi++
	}
	return lo, hi
}
