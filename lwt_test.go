package lwt_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	lwt "repro"
)

func TestPublicAPIListing4(t *testing.T) {
	for _, backend := range lwt.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			r, err := lwt.Open(lwt.Config{Backend: backend, Executors: 3})
			if err != nil {
				t.Fatal(err)
			}
			var ran atomic.Int64
			hs := make([]lwt.Handle, 50)
			for i := range hs {
				hs[i] = r.ULTCreate(func(lwt.Ctx) { ran.Add(1) })
			}
			r.Yield()
			r.JoinAll(hs)
			r.Finalize()
			if ran.Load() != 50 {
				t.Fatalf("ran = %d, want 50", ran.Load())
			}
		})
	}
}

func TestPublicAPIUnknownBackend(t *testing.T) {
	_, err := lwt.Open(lwt.Config{Backend: "not-a-backend", Executors: 2})
	if !errors.Is(err, lwt.ErrUnknownBackend) {
		t.Fatalf("err = %v, want ErrUnknownBackend", err)
	}
}

// TestPublicAPIDeprecatedConstructor pins the v1 wrapper to the v2 path:
// New(name, n) must behave exactly like Open(Config{Backend, Executors}).
func TestPublicAPIDeprecatedConstructor(t *testing.T) {
	r, err := lwt.New("go", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Finalize()
	if r.NumExecutors() != 2 {
		t.Fatalf("NumExecutors = %d, want 2", r.NumExecutors())
	}
	if got := r.Config().Executors; got != 2 {
		t.Fatalf("Config().Executors = %d, want 2", got)
	}
}

// TestPublicAPISchedulerAndSync drives the v2 additions end to end on a
// pinning backend: scheduler selection, placement, and a lock held
// across a yield.
func TestPublicAPISchedulerAndSync(t *testing.T) {
	r, err := lwt.Open(lwt.Config{Backend: "argobots", Executors: 2, Scheduler: "lifo", Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Finalize()
	if got := r.Config().Scheduler; got != "lifo" {
		t.Fatalf("granted scheduler = %q, want lifo", got)
	}
	m := r.NewMutex()
	counter := 0
	var pinned atomic.Int64
	hs := make([]lwt.Handle, 8)
	for i := range hs {
		i := i
		hs[i] = r.ULTCreateTo(i, func(c lwt.Ctx) {
			if c.ExecutorID() == i%r.NumExecutors() {
				pinned.Add(1)
			}
			m.Lock(c)
			c.Yield()
			counter++
			m.Unlock()
		})
	}
	r.JoinAll(hs)
	m.Lock(r)
	got := counter
	m.Unlock()
	if got != len(hs) {
		t.Fatalf("counter = %d, want %d", got, len(hs))
	}
	if int(pinned.Load()) != len(hs) {
		t.Fatalf("pinned = %d of %d (argobots promises placement)", pinned.Load(), len(hs))
	}
}

func TestPublicAPICustomBackendRegistration(t *testing.T) {
	// A user-supplied backend plugs into the same registry the built-in
	// adapters use.
	lwt.Register("custom-test-backend", func() lwt.Backend { return &fakeBackend{} })
	r := lwt.MustOpen(lwt.Config{Backend: "custom-test-backend", Executors: 1})
	h := r.ULTCreate(func(lwt.Ctx) {})
	r.Join(h)
	r.Finalize()
	fb := r.Backend().(*fakeBackend)
	if !fb.finalized || fb.created != 1 {
		t.Fatalf("custom backend saw created=%d finalized=%v", fb.created, fb.finalized)
	}
}

// fakeBackend is a synchronous stand-in proving the Backend surface is
// implementable outside the module.
type fakeBackend struct {
	created   int
	finalized bool
}

type fakeHandle struct{ done bool }

func (h *fakeHandle) Done() bool { return h.done }

type fakeCtx struct{ b *fakeBackend }

func (c *fakeCtx) Yield()               {}
func (c *fakeCtx) YieldTo(h lwt.Handle) {}
func (c *fakeCtx) ULTCreate(fn func(lwt.Ctx)) lwt.Handle {
	return c.b.ULTCreate(fn)
}
func (c *fakeCtx) ULTCreateTo(executor int, fn func(lwt.Ctx)) lwt.Handle {
	return c.b.ULTCreate(fn)
}
func (c *fakeCtx) TaskletCreate(fn func()) lwt.Handle {
	return c.b.TaskletCreate(fn)
}
func (c *fakeCtx) Join(h lwt.Handle) {}
func (c *fakeCtx) ExecutorID() int   { return 0 }
func (c *fakeCtx) NumExecutors() int { return 1 }

func (b *fakeBackend) Name() string              { return "custom-test-backend" }
func (b *fakeBackend) Init(cfg lwt.Config) error { return nil }
func (b *fakeBackend) NumExecutors() int         { return 1 }
func (b *fakeBackend) Yield()                    {}
func (b *fakeBackend) Join(h lwt.Handle)         {}
func (b *fakeBackend) Finalize()                 { b.finalized = true }
func (b *fakeBackend) Caps() lwt.Capabilities {
	return lwt.Capabilities{HierarchyLevels: 1, WorkUnitTypes: 1, SyncMechanism: "atomic"}
}
func (b *fakeBackend) ULTCreate(fn func(lwt.Ctx)) lwt.Handle {
	b.created++
	fn(&fakeCtx{b: b})
	return &fakeHandle{done: true}
}
func (b *fakeBackend) ULTCreateTo(executor int, fn func(lwt.Ctx)) lwt.Handle {
	return b.ULTCreate(fn)
}
func (b *fakeBackend) TaskletCreate(fn func()) lwt.Handle {
	fn()
	return &fakeHandle{done: true}
}

// TestPublicShardedServing pins the root-package sharded serving
// surface: ServeOptions shard fields, RouterByName, keyed submission
// with stable affinity, and per-shard metrics.
func TestPublicShardedServing(t *testing.T) {
	router, err := lwt.RouterByName("roundrobin")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := lwt.NewServer(lwt.ServeOptions{
		Backend: "go", Threads: 1, Shards: 2, Router: router, QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sub := srv.Submitter()
	if srv.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", srv.NumShards())
	}
	for i := 0; i < 20; i++ {
		f, err := lwt.Do(sub, context.Background(), func() (int, error) { return i, nil }, lwt.Req{Key: "sess"})
		if err != nil {
			t.Fatal(err)
		}
		if v := f.MustWait(); v != i {
			t.Fatalf("keyed result = %d, want %d", v, i)
		}
	}
	pinned := srv.ShardOf("sess")
	sm := srv.ShardMetrics()
	if sm[pinned].Submitted != 20 || sm[1-pinned].Submitted != 0 {
		t.Fatalf("keyed affinity split = %d/%d, want 20 on shard %d",
			sm[0].Submitted, sm[1].Submitted, pinned)
	}
	f, err := lwt.DoULT(sub, context.Background(), func(c lwt.Ctx) (int, error) {
		var child int
		h := c.ULTCreate(func(lwt.Ctx) { child = 9 })
		c.Join(h)
		return child, nil
	}, lwt.Req{Key: "sess"})
	if err != nil {
		t.Fatal(err)
	}
	if v := f.MustWait(); v != 9 {
		t.Fatalf("keyed ULT result = %d", v)
	}
	if m := srv.Metrics(); m.Shard != -1 || m.Shards != 2 || m.Completed != 21 {
		t.Fatalf("aggregate metrics = %+v", m)
	}
}
