package lwt_test

import (
	"errors"
	"sync/atomic"
	"testing"

	lwt "repro"
)

func TestPublicAPIListing4(t *testing.T) {
	for _, backend := range lwt.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			r, err := lwt.New(backend, 3)
			if err != nil {
				t.Fatal(err)
			}
			var ran atomic.Int64
			hs := make([]lwt.Handle, 50)
			for i := range hs {
				hs[i] = r.ULTCreate(func(lwt.Ctx) { ran.Add(1) })
			}
			r.Yield()
			r.JoinAll(hs)
			r.Finalize()
			if ran.Load() != 50 {
				t.Fatalf("ran = %d, want 50", ran.Load())
			}
		})
	}
}

func TestPublicAPIUnknownBackend(t *testing.T) {
	_, err := lwt.New("not-a-backend", 2)
	if !errors.Is(err, lwt.ErrUnknownBackend) {
		t.Fatalf("err = %v, want ErrUnknownBackend", err)
	}
}

func TestPublicAPICustomBackendRegistration(t *testing.T) {
	// A user-supplied backend plugs into the same registry the built-in
	// adapters use.
	lwt.Register("custom-test-backend", func() lwt.Backend { return &fakeBackend{} })
	r := lwt.MustNew("custom-test-backend", 1)
	h := r.ULTCreate(func(lwt.Ctx) {})
	r.Join(h)
	r.Finalize()
	fb := r.Backend().(*fakeBackend)
	if !fb.finalized || fb.created != 1 {
		t.Fatalf("custom backend saw created=%d finalized=%v", fb.created, fb.finalized)
	}
}

// fakeBackend is a synchronous stand-in proving the Backend surface is
// implementable outside the module.
type fakeBackend struct {
	created   int
	finalized bool
}

type fakeHandle struct{ done bool }

func (h *fakeHandle) Done() bool { return h.done }

type fakeCtx struct{ b *fakeBackend }

func (c *fakeCtx) Yield() {}
func (c *fakeCtx) ULTCreate(fn func(lwt.Ctx)) lwt.Handle {
	return c.b.ULTCreate(fn)
}
func (c *fakeCtx) TaskletCreate(fn func()) lwt.Handle {
	return c.b.TaskletCreate(fn)
}
func (c *fakeCtx) Join(h lwt.Handle) {}

func (b *fakeBackend) Name() string      { return "custom-test-backend" }
func (b *fakeBackend) Init(n int) error  { return nil }
func (b *fakeBackend) Yield()            {}
func (b *fakeBackend) Join(h lwt.Handle) {}
func (b *fakeBackend) Finalize()         { b.finalized = true }
func (b *fakeBackend) Caps() lwt.Capabilities {
	return lwt.Capabilities{HierarchyLevels: 1, WorkUnitTypes: 1}
}
func (b *fakeBackend) ULTCreate(fn func(lwt.Ctx)) lwt.Handle {
	b.created++
	fn(&fakeCtx{b: b})
	return &fakeHandle{done: true}
}
func (b *fakeBackend) TaskletCreate(fn func()) lwt.Handle {
	fn()
	return &fakeHandle{done: true}
}
