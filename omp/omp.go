// Package omp is the public directive-style programming layer over the
// unified LWT API — the paper's future-work proposal (§X) realized: an
// OpenMP-shaped programming model (parallel for with static/dynamic/
// guided schedules, single-region tasks, taskwait, reductions, critical
// sections) whose "threads" are lightweight work units on any registered
// backend, instead of Pthreads.
//
//	rt := omp.MustOpen(omp.Config{Backend: "argobots", Executors: 8})
//	defer rt.Close()
//	rt.ParallelFor(n, omp.Static, 0, func(i int) { v[i] *= a })
package omp

import (
	"repro/internal/omplwt"
)

// Schedule selects the loop iteration-distribution policy.
type Schedule = omplwt.Schedule

// The schedule kinds of the schedule clause.
const (
	// Static divides iterations into one contiguous chunk per thread.
	Static = omplwt.Static
	// Dynamic hands out fixed-size chunks on demand.
	Dynamic = omplwt.Dynamic
	// Guided hands out exponentially shrinking chunks on demand.
	Guided = omplwt.Guided
)

// Runtime is a directive-style layer over one LWT backend.
type Runtime = omplwt.Runtime

// Region is the per-construct context inside parallel regions.
type Region = omplwt.Region

// Config parameterizes Open — the unified API's configuration (backend,
// executors, scheduler policy, strictness), so directive-level programs
// negotiate capabilities exactly like unified-API ones.
type Config = omplwt.Config

// Open builds the layer over a unified-API backend opened from the
// configuration.
func Open(cfg Config) (*Runtime, error) { return omplwt.Open(cfg) }

// MustOpen is Open for known-good configurations; it panics on error.
func MustOpen(cfg Config) *Runtime { return omplwt.MustOpen(cfg) }

// New builds the layer over the named unified-API backend.
//
// Deprecated: New is the v1 positional constructor kept for migration;
// use Open.
func New(backend string, nthreads int) (*Runtime, error) {
	return omplwt.New(backend, nthreads)
}

// MustNew is New for known-good arguments; it panics on error.
//
// Deprecated: use MustOpen.
func MustNew(backend string, nthreads int) *Runtime {
	return omplwt.MustNew(backend, nthreads)
}
